//! The lint rules `gauge-audit` enforces, and the model-derived context
//! (canonical cost values, counter field names) they check against.
//!
//! Each rule guards one way the simulator has been observed to drift from
//! the paper it reproduces:
//!
//! * [`COST_LITERALS`] — a cycle cost restated as a literal outside
//!   `sgx-sim::costs` silently decouples from recalibration (§2.2, §2.3,
//!   Appendix A all cite exact costs).
//! * [`WALLCLOCK`] — the simulator is a cycle-accurate *model*; reading
//!   the host clock (`std::time`, `Instant::now`) inside it makes runs
//!   non-reproducible and corrupts every figure built from cycle counts.
//! * [`COUNTER_CAST`] — the perf-counter fields are `u64` event totals;
//!   a truncating `as` cast or float accumulation loses counts exactly
//!   when workloads are large enough to matter.
//! * [`UNWRAP`] — simulator code must surface errors as values;
//!   `unwrap`/`expect` in non-test code turns modeling bugs into aborts
//!   mid-sweep. Justified panics go in the allowlist with a reason.
//! * [`FS_WRITE`] — artifact writes in `crates/core` must go through the
//!   injectable `ArtifactIo` plane (`core::io`); a direct `std::fs`
//!   call bypasses durability (fsync + rename), integrity footers, the
//!   recovery journal, and chaos testing all at once.

use crate::lexer::Tok;
use crate::lexer::{test_spans, Token};
use crate::Finding;
use std::collections::BTreeMap;
use std::collections::BTreeSet;

/// Rule id: duplicated canonical cycle-cost literals.
pub const COST_LITERALS: &str = "cost-literals";
/// Rule id: wall-clock time sources inside the simulator.
pub const WALLCLOCK: &str = "wallclock";
/// Rule id: truncating casts on counter fields.
pub const COUNTER_CAST: &str = "counter-cast";
/// Rule id: `unwrap`/`expect` in non-test simulator code.
pub const UNWRAP: &str = "unwrap";
/// Rule id: direct `std::fs` use in `crates/core` outside the
/// `ArtifactIo` real backend.
pub const FS_WRITE: &str = "fs-write";

/// All rule ids, in reporting order.
pub const ALL_RULES: &[&str] = &[COST_LITERALS, WALLCLOCK, COUNTER_CAST, UNWRAP, FS_WRITE];

/// Cost literals below this value are too common to claim as canonical
/// (e.g. the 16-page eviction batch); only the big cycle costs are.
const MIN_CANONICAL_COST: u64 = 500;

/// Cast targets that can truncate or round a `u64` counter.
const NARROWING_CASTS: &[&str] = &[
    "u8", "u16", "u32", "i8", "i16", "i32", "i64", "isize", "usize", "f32", "f64",
];

/// Crates whose `src/` trees count as simulator code (rules b–d).
const SIM_SRC: &[&str] = &[
    "crates/sgx-sim/src/",
    "crates/mem-sim/src/",
    "crates/libos-sim/src/",
];

/// `std::fs` free functions that land bytes on (or remove them from)
/// disk; in `crates/core` these must be reached through `ArtifactIo`.
const FS_OPS: &[&str] = &[
    "write",
    "read",
    "read_to_string",
    "read_dir",
    "rename",
    "copy",
    "remove_file",
    "remove_dir_all",
    "create_dir",
    "create_dir_all",
];

/// Model-derived context shared by all rules.
#[derive(Debug, Clone, Default)]
pub struct RuleContext {
    /// Canonical cycle-cost value → constant name, extracted from
    /// `sgx-sim::costs` (the single source of truth; this tool never
    /// hard-codes the values themselves).
    pub cost_values: BTreeMap<u64, String>,
    /// Counter field names extracted from `mem-sim::counters`.
    pub counter_fields: BTreeSet<String>,
}

impl RuleContext {
    /// Builds the context from the sources of the two canonical modules.
    pub fn from_sources(costs_src: &str, counters_src: &str) -> RuleContext {
        RuleContext {
            cost_values: extract_cost_values(costs_src),
            counter_fields: extract_counter_fields(counters_src),
        }
    }
}

/// Extracts `pub const NAME: <ty> = <int>;` values ≥ [`MIN_CANONICAL_COST`]
/// from the canonical costs module. Derived constants (initialized by an
/// expression, not a literal) are intentionally skipped: their *source*
/// values are the canonical ones.
pub fn extract_cost_values(src: &str) -> BTreeMap<u64, String> {
    let toks = crate::lexer::lex(src);
    let mut out = BTreeMap::new();
    for w in toks.windows(7) {
        if let [a, b, name, colon, _ty, eq, val] = w {
            if a.tok == Tok::Ident("pub".into())
                && b.tok == Tok::Ident("const".into())
                && colon.tok == Tok::Punct(':')
                && eq.tok == Tok::Punct('=')
            {
                if let (Tok::Ident(n), Tok::Int(v)) = (&name.tok, &val.tok) {
                    if *v >= MIN_CANONICAL_COST {
                        out.insert(*v, n.clone());
                    }
                }
            }
        }
    }
    out
}

/// Extracts the `pub <field>: u64` names from the counters module.
pub fn extract_counter_fields(src: &str) -> BTreeSet<String> {
    let toks = crate::lexer::lex(src);
    let mut out = BTreeSet::new();
    for w in toks.windows(4) {
        if let [p, name, colon, ty] = w {
            if p.tok == Tok::Ident("pub".into())
                && colon.tok == Tok::Punct(':')
                && ty.tok == Tok::Ident("u64".into())
            {
                if let Tok::Ident(n) = &name.tok {
                    out.insert(n.clone());
                }
            }
        }
    }
    out
}

/// Runs every rule whose scope covers `rel` (workspace-relative path with
/// `/` separators) over `src`, returning the raw findings (allowlists are
/// applied by the caller).
pub fn check_source(rel: &str, src: &str, ctx: &RuleContext) -> Vec<Finding> {
    let toks = crate::lexer::lex(src);
    let spans = test_spans(&toks);
    let in_test = |idx: usize| spans.iter().any(|&(s, e)| idx >= s && idx <= e);
    let mut findings = Vec::new();

    if cost_literal_scope(rel) {
        for (idx, t) in toks.iter().enumerate() {
            if in_test(idx) {
                continue;
            }
            if let Tok::Int(v) = t.tok {
                if let Some(name) = ctx.cost_values.get(&v) {
                    findings.push(Finding {
                        rule: COST_LITERALS,
                        file: rel.to_string(),
                        line: t.line,
                        message: format!(
                            "cycle-cost literal {v} duplicates sgx_sim::costs::{name}; \
                             use the constant"
                        ),
                    });
                }
            }
        }
    }

    if wallclock_scope(rel) {
        for (idx, t) in toks.iter().enumerate() {
            if in_test(idx) {
                continue;
            }
            if let Tok::Ident(s) = &t.tok {
                let banned = match s.as_str() {
                    "Instant" | "SystemTime" => true,
                    "std" => is_path(&toks, idx, &["std", "time"]),
                    _ => false,
                };
                if banned {
                    findings.push(Finding {
                        rule: WALLCLOCK,
                        file: rel.to_string(),
                        line: t.line,
                        message: format!(
                            "wall-clock time source `{s}` in simulator code; \
                             the model must be deterministic in simulated cycles"
                        ),
                    });
                }
            }
        }
    }

    if fs_write_scope(rel) {
        for (idx, t) in toks.iter().enumerate() {
            if in_test(idx) {
                continue;
            }
            if let Tok::Ident(s) = &t.tok {
                let banned = match s.as_str() {
                    "File" | "OpenOptions" => true,
                    "fs" => FS_OPS.iter().any(|op| is_path(&toks, idx, &["fs", op])),
                    _ => false,
                };
                if banned {
                    findings.push(Finding {
                        rule: FS_WRITE,
                        file: rel.to_string(),
                        line: t.line,
                        message: format!(
                            "direct filesystem access `{s}` outside the ArtifactIo \
                             real backend; route artifact I/O through core::io"
                        ),
                    });
                }
            }
        }
    }

    if sim_src_scope(rel) {
        for (idx, w) in toks.windows(4).enumerate() {
            if in_test(idx) {
                continue;
            }
            if let [dot, field, as_kw, ty] = w {
                if dot.tok == Tok::Punct('.') && as_kw.tok == Tok::Ident("as".into()) {
                    if let (Tok::Ident(f), Tok::Ident(t)) = (&field.tok, &ty.tok) {
                        if ctx.counter_fields.contains(f) && NARROWING_CASTS.contains(&t.as_str()) {
                            findings.push(Finding {
                                rule: COUNTER_CAST,
                                file: rel.to_string(),
                                line: dot.line,
                                message: format!(
                                    "counter field `{f}` cast to `{t}` can lose events; \
                                     keep counters in u64"
                                ),
                            });
                        }
                    }
                }
            }
        }
    }

    if unwrap_scope(rel) {
        for (idx, w) in toks.windows(3).enumerate() {
            if in_test(idx) {
                continue;
            }
            if let [dot, call, paren] = w {
                if dot.tok == Tok::Punct('.') && paren.tok == Tok::Punct('(') {
                    if let Tok::Ident(name) = &call.tok {
                        if name == "unwrap" || name == "expect" {
                            let arg = match toks.get(idx + 3).map(|t| &t.tok) {
                                Some(Tok::Str(s)) => format!("(\"{s}\")"),
                                _ => "()".to_string(),
                            };
                            findings.push(Finding {
                                rule: UNWRAP,
                                file: rel.to_string(),
                                line: dot.line,
                                message: format!(
                                    ".{name}{arg} in non-test simulator code; \
                                     return an error instead (or allowlist with a reason)"
                                ),
                            });
                        }
                    }
                }
            }
        }
    }

    findings
}

/// Whether `rel` is checked for duplicated cost literals: the whole
/// workspace minus the canonical module itself and test trees (vendored
/// stubs and build output never reach this function).
fn cost_literal_scope(rel: &str) -> bool {
    rel != "crates/sgx-sim/src/costs.rs" && !rel.starts_with("tests/") && !rel.contains("/tests/")
}

/// Whether `rel` is simulator code banned from reading wall-clock time:
/// the simulator crates, the fault-injection plane (its schedules and
/// backoff must be pure simulated cycles), the trace plane (records are
/// keyed on simulated thread clocks; a wall-clock stamp would break
/// byte-determinism across runs and `--jobs`), and the sweep executor
/// (which aggregates their cycle outputs).
fn wallclock_scope(rel: &str) -> bool {
    sim_src_scope(rel)
        || rel.starts_with("crates/faults/src/")
        || rel.starts_with("crates/trace/src/")
        || rel == "crates/core/src/sweep.rs"
        || rel == "crates/core/src/io.rs"
}

/// Whether `rel` must surface errors as values rather than panic: the
/// simulator crates plus the artifact I/O plane, whose failures are the
/// whole point of the crash-safety model — aborting on them would turn
/// every injected fault into a harness crash.
fn unwrap_scope(rel: &str) -> bool {
    sim_src_scope(rel) || rel == "crates/core/src/io.rs"
}

/// Whether `rel` is banned from direct `std::fs` access: everything in
/// `crates/core/src/` except the `ArtifactIo` real backend itself.
fn fs_write_scope(rel: &str) -> bool {
    rel.starts_with("crates/core/src/") && rel != "crates/core/src/io.rs"
}

/// Whether `rel` lies in one of the simulator crates' `src/` trees.
fn sim_src_scope(rel: &str) -> bool {
    SIM_SRC.iter().any(|p| rel.starts_with(p))
}

/// Whether the identifier at `idx` begins the `::`-separated path
/// `segments` (e.g. `std::time`).
fn is_path(toks: &[Token], idx: usize, segments: &[&str]) -> bool {
    let mut k = idx;
    for (n, seg) in segments.iter().enumerate() {
        if toks.get(k).map(|t| &t.tok) != Some(&Tok::Ident(seg.to_string())) {
            return false;
        }
        k += 1;
        if n + 1 < segments.len() {
            if toks.get(k).map(|t| &t.tok) != Some(&Tok::Punct(':'))
                || toks.get(k + 1).map(|t| &t.tok) != Some(&Tok::Punct(':'))
            {
                return false;
            }
            k += 2;
        }
    }
    true
}
