//! The lint rules `gauge-audit` enforces, and the model-derived context
//! (canonical cost values, counter field names) they check against.
//!
//! Each rule guards one way the simulator has been observed to drift from
//! the paper it reproduces:
//!
//! * [`COST_LITERALS`] — a cycle cost restated as a literal outside
//!   `sgx-sim::costs` silently decouples from recalibration (§2.2, §2.3,
//!   Appendix A all cite exact costs).
//! * [`WALLCLOCK`] — the simulator is a cycle-accurate *model*; reading
//!   the host clock (`std::time`, `Instant::now`) inside it makes runs
//!   non-reproducible and corrupts every figure built from cycle counts.
//! * [`COUNTER_CAST`] — the perf-counter fields are `u64` event totals;
//!   a truncating `as` cast or float accumulation loses counts exactly
//!   when workloads are large enough to matter.
//! * [`UNWRAP`] — simulator code must surface errors as values;
//!   `unwrap`/`expect` in non-test code turns modeling bugs into aborts
//!   mid-sweep. Justified panics go in the allowlist with a reason.
//! * [`FS_WRITE`] — artifact writes in `crates/core` must go through the
//!   injectable `ArtifactIo` plane (`core::io`); a direct `std::fs`
//!   call bypasses durability (fsync + rename), integrity footers, the
//!   recovery journal, and chaos testing all at once.

use crate::lexer::Tok;
use crate::lexer::{test_spans, Token};
use crate::Finding;
use std::collections::BTreeMap;
use std::collections::BTreeSet;

/// Rule id: duplicated canonical cycle-cost literals.
pub const COST_LITERALS: &str = "cost-literals";
/// Rule id: wall-clock time sources inside the simulator.
pub const WALLCLOCK: &str = "wallclock";
/// Rule id: truncating casts on counter fields.
pub const COUNTER_CAST: &str = "counter-cast";
/// Rule id: `unwrap`/`expect` in non-test simulator code.
pub const UNWRAP: &str = "unwrap";
/// Rule id: direct `std::fs` use in `crates/core` outside the
/// `ArtifactIo` real backend.
pub const FS_WRITE: &str = "fs-write";
/// Rule id (semantic): hash-ordered iteration in emission-reachable
/// functions. See [`crate::passes::determinism`].
pub const HASH_ITER: &str = "hash-iter";
/// Rule id (semantic): counter/cycle mutations outside the checked
/// manifest. See [`crate::passes::cycles`].
pub const CYCLE_ROUTING: &str = "cycle-routing";
/// Rule id (semantic): impurity reachable from the access hot path.
/// See [`crate::passes::hotpath`].
pub const HOT_PATH: &str = "hot-path";
/// Rule id (semantic): unbalanced `Env::phase`/`phase_end` spans.
/// See [`crate::passes::phase`].
pub const PHASE_BALANCE: &str = "phase-balance";

/// All rule ids, in reporting order: the five token rules, then the
/// four semantic passes.
pub const ALL_RULES: &[&str] = &[
    COST_LITERALS,
    WALLCLOCK,
    COUNTER_CAST,
    UNWRAP,
    FS_WRITE,
    HASH_ITER,
    CYCLE_ROUTING,
    HOT_PATH,
    PHASE_BALANCE,
];

/// One rule's registry entry: id, one-line summary, and the long-form
/// text `gauge-audit --explain <RULE>` prints.
#[derive(Debug, Clone, Copy)]
pub struct RuleInfo {
    /// The stable rule id.
    pub id: &'static str,
    /// One-line summary (used in SARIF `shortDescription` and `--help`).
    pub summary: &'static str,
    /// Long-form explanation: what fires, why it matters, how to fix
    /// or suppress.
    pub explain: &'static str,
}

/// The rule registry, in [`ALL_RULES`] order.
pub const RULE_INFO: &[RuleInfo] = &[
    RuleInfo {
        id: COST_LITERALS,
        summary: "canonical cycle-cost literal duplicated outside sgx-sim::costs",
        explain: "A cycle cost the paper cites (EWB, ECALL round trip, ...) appears as an \
integer literal outside crates/sgx-sim/src/costs.rs. Duplicated constants silently decouple \
from recalibration: the model changes, the copy does not, and every figure built from the \
copy is wrong without a test failing.\nFix: reference the sgx_sim::costs constant. \
Suppress: crates/audit/allowlists/cost-literals.allow with a recorded reason.",
    },
    RuleInfo {
        id: WALLCLOCK,
        summary: "wall-clock time source inside simulator code",
        explain: "std::time / Instant / SystemTime in the simulator, fault, trace, sweep, or \
artifact-io planes. The model is deterministic in simulated cycles; host-clock reads make \
runs non-reproducible and corrupt cycle-derived figures.\nFix: derive timing from simulated \
cycle clocks. Suppress: allowlists/wallclock.allow (intentionally empty today).",
    },
    RuleInfo {
        id: COUNTER_CAST,
        summary: "perf-counter field cast to a narrower or floating type",
        explain: "A mem_sim::counters field is cast with `as` to a truncating integer or \
float inside the simulator crates. Counters are u64 event totals; narrowing loses events \
exactly when workloads are large enough to matter.\nFix: keep u64 end to end; convert at \
the presentation layer. Suppress: allowlists/counter-cast.allow.",
    },
    RuleInfo {
        id: UNWRAP,
        summary: ".unwrap()/.expect() in non-test simulator code",
        explain: "Simulator code must surface errors as values; a panic aborts the whole \
sweep mid-run. Justified panics (documented API contracts, unreachable-by-construction) \
go in allowlists/unwrap.allow with the reason recorded.",
    },
    RuleInfo {
        id: FS_WRITE,
        summary: "direct std::fs access in crates/core outside core::io",
        explain: "Artifact writes in crates/core must go through the injectable ArtifactIo \
plane (core::io::RealFs is the single std::fs user). A direct std::fs call bypasses \
durability (fsync + atomic rename), integrity footers, the recovery journal, and chaos \
testing at once.\nFix: route through core::io. Suppress: allowlists/fs-write.allow.",
    },
    RuleInfo {
        id: HASH_ITER,
        summary: "hash-ordered iteration in an emission-reachable function",
        explain: "A function from which an Emitter write, report aggregation, or checkpoint \
serialization is reachable (workspace call graph, name-matched over-approximation) iterates \
a HashMap/HashSet/FxHashMap/FxHashSet. Hash order varies across processes and insertion \
histories, so the iteration can leak nondeterministic order into committed artifact bytes — \
breaking the byte-identical-across-runs-and---jobs guarantee.\nExempt automatically: results \
routed through sort*/BTreeMap/BTreeSet or an order-insensitive reduction (sum, count, min, \
max, all, any, len) by the end of the same or next statement.\nFix: iterate a BTreeMap, or \
collect-and-sort. Suppress: allowlists/hash-iter.allow or the workspace baseline.",
    },
    RuleInfo {
        id: CYCLE_ROUTING,
        summary: "counter/cycle mutation outside the checked manifest",
        explain: "A `+=` on a counter field or cycle accumulator in crates/mem-sim or \
crates/sgx-sim is neither routed through sgx_sim::costs (RHS references `costs` or an \
ALL_CAPS *_CYCLES constant) nor inside a function declared in \
crates/audit/manifests/cycle-routing.manifest. The manifest is the reviewed list of \
functions allowed to account cycles; it is what makes the cycle-decomposition identity \
provable from source. Stale manifest entries (functions that no longer mutate counters) \
are also reported, so the manifest cannot rot into a blanket waiver.\nFix: route through \
costs, or add the function to the manifest with a reason comment.",
    },
    RuleInfo {
        id: HOT_PATH,
        summary: "allocation/panic/lock/I-O reachable from the access hot path",
        explain: "The function is transitively reachable from Machine::access/access_stream \
(mem-sim) or SgxMachine::access/access_stream (sgx-sim) — the per-simulated-access paths \
pinned by BENCH_hotpath.json — and contains an allocating call (Vec::new, .push, .collect, \
.clone, format!, ...), a panicking construct (unwrap/expect/panic!/assert!), a lock, or \
I/O. debug_assert! and #[cfg(feature = \"audit\")]-gated code are exempt (compiled out of \
release).\nFix: hoist the work off the hot path, or declare an intended scratch buffer in \
allowlists/hot-path.allow with the amortization argument recorded.",
    },
    RuleInfo {
        id: PHASE_BALANCE,
        summary: "Env::phase/phase_end spans unbalanced within one function body",
        explain: "A function opens a trace phase span (.phase(\"name\")) it never closes, or \
closes one it never opened. Unbalanced spans surface as WorkloadError::Trace only in traced \
runs — exactly how an instrumented workload ships broken while untraced tests pass. \
Non-literal span names pair by count; with_phase(..) is self-balancing and ignored.\nFix: \
balance within the body or use with_phase.",
    },
];

/// Looks up a rule's registry entry.
pub fn rule_info(id: &str) -> Option<&'static RuleInfo> {
    RULE_INFO.iter().find(|r| r.id == id)
}

/// Cost literals below this value are too common to claim as canonical
/// (e.g. the 16-page eviction batch); only the big cycle costs are.
const MIN_CANONICAL_COST: u64 = 500;

/// Cast targets that can truncate or round a `u64` counter.
const NARROWING_CASTS: &[&str] = &[
    "u8", "u16", "u32", "i8", "i16", "i32", "i64", "isize", "usize", "f32", "f64",
];

/// Crates whose `src/` trees count as simulator code (rules b–d).
const SIM_SRC: &[&str] = &[
    "crates/sgx-sim/src/",
    "crates/mem-sim/src/",
    "crates/libos-sim/src/",
];

/// `std::fs` free functions that land bytes on (or remove them from)
/// disk; in `crates/core` these must be reached through `ArtifactIo`.
const FS_OPS: &[&str] = &[
    "write",
    "read",
    "read_to_string",
    "read_dir",
    "rename",
    "copy",
    "remove_file",
    "remove_dir_all",
    "create_dir",
    "create_dir_all",
];

/// Model-derived context shared by all rules.
#[derive(Debug, Clone, Default)]
pub struct RuleContext {
    /// Canonical cycle-cost value → constant name, extracted from
    /// `sgx-sim::costs` (the single source of truth; this tool never
    /// hard-codes the values themselves).
    pub cost_values: BTreeMap<u64, String>,
    /// Counter field names extracted from `mem-sim::counters`.
    pub counter_fields: BTreeSet<String>,
}

impl RuleContext {
    /// Builds the context from the sources of the two canonical modules.
    pub fn from_sources(costs_src: &str, counters_src: &str) -> RuleContext {
        RuleContext {
            cost_values: extract_cost_values(costs_src),
            counter_fields: extract_counter_fields(counters_src),
        }
    }
}

/// Extracts `pub const NAME: <ty> = <int>;` values ≥ [`MIN_CANONICAL_COST`]
/// from the canonical costs module. Derived constants (initialized by an
/// expression, not a literal) are intentionally skipped: their *source*
/// values are the canonical ones.
pub fn extract_cost_values(src: &str) -> BTreeMap<u64, String> {
    let toks = crate::lexer::lex(src);
    let mut out = BTreeMap::new();
    for w in toks.windows(7) {
        if let [a, b, name, colon, _ty, eq, val] = w {
            if a.tok == Tok::Ident("pub".into())
                && b.tok == Tok::Ident("const".into())
                && colon.tok == Tok::Punct(':')
                && eq.tok == Tok::Punct('=')
            {
                if let (Tok::Ident(n), Tok::Int(v)) = (&name.tok, &val.tok) {
                    if *v >= MIN_CANONICAL_COST {
                        out.insert(*v, n.clone());
                    }
                }
            }
        }
    }
    out
}

/// Extracts the `pub <field>: u64` names from the counters module.
pub fn extract_counter_fields(src: &str) -> BTreeSet<String> {
    let toks = crate::lexer::lex(src);
    let mut out = BTreeSet::new();
    for w in toks.windows(4) {
        if let [p, name, colon, ty] = w {
            if p.tok == Tok::Ident("pub".into())
                && colon.tok == Tok::Punct(':')
                && ty.tok == Tok::Ident("u64".into())
            {
                if let Tok::Ident(n) = &name.tok {
                    out.insert(n.clone());
                }
            }
        }
    }
    out
}

/// Runs every rule whose scope covers `rel` (workspace-relative path with
/// `/` separators) over `src`, returning the raw findings (allowlists are
/// applied by the caller).
pub fn check_source(rel: &str, src: &str, ctx: &RuleContext) -> Vec<Finding> {
    let toks = crate::lexer::lex(src);
    let spans = test_spans(&toks);
    let in_test = |idx: usize| spans.iter().any(|&(s, e)| idx >= s && idx <= e);
    let mut findings = Vec::new();

    if cost_literal_scope(rel) {
        for (idx, t) in toks.iter().enumerate() {
            if in_test(idx) {
                continue;
            }
            if let Tok::Int(v) = t.tok {
                if let Some(name) = ctx.cost_values.get(&v) {
                    findings.push(Finding {
                        rule: COST_LITERALS,
                        file: rel.to_string(),
                        line: t.line,
                        message: format!(
                            "cycle-cost literal {v} duplicates sgx_sim::costs::{name}; \
                             use the constant"
                        ),
                    });
                }
            }
        }
    }

    if wallclock_scope(rel) {
        for (idx, t) in toks.iter().enumerate() {
            if in_test(idx) {
                continue;
            }
            if let Tok::Ident(s) = &t.tok {
                let banned = match s.as_str() {
                    "Instant" | "SystemTime" => true,
                    "std" => is_path(&toks, idx, &["std", "time"]),
                    _ => false,
                };
                if banned {
                    findings.push(Finding {
                        rule: WALLCLOCK,
                        file: rel.to_string(),
                        line: t.line,
                        message: format!(
                            "wall-clock time source `{s}` in simulator code; \
                             the model must be deterministic in simulated cycles"
                        ),
                    });
                }
            }
        }
    }

    if fs_write_scope(rel) {
        for (idx, t) in toks.iter().enumerate() {
            if in_test(idx) {
                continue;
            }
            if let Tok::Ident(s) = &t.tok {
                let banned = match s.as_str() {
                    "File" | "OpenOptions" => true,
                    "fs" => FS_OPS.iter().any(|op| is_path(&toks, idx, &["fs", op])),
                    _ => false,
                };
                if banned {
                    findings.push(Finding {
                        rule: FS_WRITE,
                        file: rel.to_string(),
                        line: t.line,
                        message: format!(
                            "direct filesystem access `{s}` outside the ArtifactIo \
                             real backend; route artifact I/O through core::io"
                        ),
                    });
                }
            }
        }
    }

    if sim_src_scope(rel) {
        for (idx, w) in toks.windows(4).enumerate() {
            if in_test(idx) {
                continue;
            }
            if let [dot, field, as_kw, ty] = w {
                if dot.tok == Tok::Punct('.') && as_kw.tok == Tok::Ident("as".into()) {
                    if let (Tok::Ident(f), Tok::Ident(t)) = (&field.tok, &ty.tok) {
                        if ctx.counter_fields.contains(f) && NARROWING_CASTS.contains(&t.as_str()) {
                            findings.push(Finding {
                                rule: COUNTER_CAST,
                                file: rel.to_string(),
                                line: dot.line,
                                message: format!(
                                    "counter field `{f}` cast to `{t}` can lose events; \
                                     keep counters in u64"
                                ),
                            });
                        }
                    }
                }
            }
        }
    }

    if unwrap_scope(rel) {
        for (idx, w) in toks.windows(3).enumerate() {
            if in_test(idx) {
                continue;
            }
            if let [dot, call, paren] = w {
                if dot.tok == Tok::Punct('.') && paren.tok == Tok::Punct('(') {
                    if let Tok::Ident(name) = &call.tok {
                        if name == "unwrap" || name == "expect" {
                            let arg = match toks.get(idx + 3).map(|t| &t.tok) {
                                Some(Tok::Str(s)) => format!("(\"{s}\")"),
                                _ => "()".to_string(),
                            };
                            findings.push(Finding {
                                rule: UNWRAP,
                                file: rel.to_string(),
                                line: dot.line,
                                message: format!(
                                    ".{name}{arg} in non-test simulator code; \
                                     return an error instead (or allowlist with a reason)"
                                ),
                            });
                        }
                    }
                }
            }
        }
    }

    findings
}

/// Whether `rel` is checked for duplicated cost literals: the whole
/// workspace minus the canonical module itself and test trees (vendored
/// stubs and build output never reach this function).
fn cost_literal_scope(rel: &str) -> bool {
    rel != "crates/sgx-sim/src/costs.rs" && !rel.starts_with("tests/") && !rel.contains("/tests/")
}

/// Whether `rel` is simulator code banned from reading wall-clock time:
/// the simulator crates, the fault-injection plane (its schedules and
/// backoff must be pure simulated cycles), the trace plane (records are
/// keyed on simulated thread clocks; a wall-clock stamp would break
/// byte-determinism across runs and `--jobs`), and the sweep executor
/// (which aggregates their cycle outputs). The cross-enclave relay is
/// in scope too: its delivery queue, failure detector, and fault
/// schedules are all keyed on simulated cycles.
fn wallclock_scope(rel: &str) -> bool {
    sim_src_scope(rel)
        || rel.starts_with("crates/faults/src/")
        || rel.starts_with("crates/trace/src/")
        || rel.starts_with("crates/campaign/src/")
        || rel.starts_with("crates/relay/src/")
        || rel == "crates/core/src/sweep.rs"
        || rel == "crates/core/src/io.rs"
}

/// Whether `rel` must surface errors as values rather than panic: the
/// simulator crates plus the artifact I/O plane, whose failures are the
/// whole point of the crash-safety model — aborting on them would turn
/// every injected fault into a harness crash.
fn unwrap_scope(rel: &str) -> bool {
    sim_src_scope(rel)
        || rel.starts_with("crates/campaign/src/")
        || rel.starts_with("crates/relay/src/")
        || rel == "crates/core/src/io.rs"
}

/// Whether `rel` is banned from direct `std::fs` access: everything in
/// `crates/core/src/` except the `ArtifactIo` real backend itself, plus
/// the whole campaign layer (which must route every byte through the
/// injectable artifact plane for the soak-kill story to hold).
fn fs_write_scope(rel: &str) -> bool {
    (rel.starts_with("crates/core/src/") && rel != "crates/core/src/io.rs")
        || rel.starts_with("crates/campaign/src/")
        || rel.starts_with("crates/relay/src/")
}

/// Whether `rel` lies in one of the simulator crates' `src/` trees.
fn sim_src_scope(rel: &str) -> bool {
    SIM_SRC.iter().any(|p| rel.starts_with(p))
}

/// Whether the identifier at `idx` begins the `::`-separated path
/// `segments` (e.g. `std::time`).
fn is_path(toks: &[Token], idx: usize, segments: &[&str]) -> bool {
    let mut k = idx;
    for (n, seg) in segments.iter().enumerate() {
        if toks.get(k).map(|t| &t.tok) != Some(&Tok::Ident(seg.to_string())) {
            return false;
        }
        k += 1;
        if n + 1 < segments.len() {
            if toks.get(k).map(|t| &t.tok) != Some(&Tok::Punct(':'))
                || toks.get(k + 1).map(|t| &t.tok) != Some(&Tok::Punct(':'))
            {
                return false;
            }
            k += 2;
        }
    }
    true
}
