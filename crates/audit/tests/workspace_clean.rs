//! The real workspace must scan clean: this is `gauge-audit --check`
//! enforced from the tier-1 test suite, so a violation fails `cargo
//! test` even when CI's dedicated audit job is skipped.
//!
//! "Clean" means the full contract: no surviving finding from any token
//! rule or semantic pass, no stale baseline entry (paid-off debt must
//! be removed), and no stale allowlist entry (`--strict` in CI).

use std::path::Path;

fn workspace_root() -> std::path::PathBuf {
    Path::new(env!("CARGO_MANIFEST_DIR"))
        .ancestors()
        .nth(2)
        .expect("crates/audit sits two levels below the workspace root")
        .to_path_buf()
}

#[test]
fn workspace_has_no_model_lint_violations() {
    let report = audit::scan_workspace(&workspace_root()).expect("scan must succeed");
    assert!(
        report.files_checked > 50,
        "scan looked at too few files ({}) — wrong root?",
        report.files_checked
    );
    assert!(
        report.findings.is_empty(),
        "model-lint violations:\n{}",
        report
            .findings
            .iter()
            .map(ToString::to_string)
            .collect::<Vec<_>>()
            .join("\n")
    );
    assert!(
        report.stale_baseline.is_empty(),
        "stale baseline entries (remove them):\n{}",
        report.stale_baseline.join("\n")
    );
    assert!(
        report.stale_allow.is_empty(),
        "stale allowlist entries (matched nothing):\n{}",
        report.stale_allow.join("\n")
    );
    assert_eq!(audit::exit_code(&report, true), 0);
}

#[test]
fn semantic_suppressions_are_in_active_use() {
    // The semantic passes must actually be exercising the suppression
    // planes on the real tree: the hot-path scratch allowlist and the
    // cycle-routing manifest both exist because real code needs them.
    // If these counts drop to zero the passes silently stopped seeing
    // the workspace (wrong scope filter, parser regression, ...).
    let report = audit::scan_workspace(&workspace_root()).expect("scan must succeed");
    let hot = report
        .suppressed_by_rule
        .get("hot-path")
        .copied()
        .unwrap_or(0);
    assert!(
        hot > 0,
        "hot-path pass suppressed nothing — is the access_stream call graph empty?"
    );
}
