//! The real workspace must scan clean: this is `gauge-audit --check`
//! enforced from the tier-1 test suite, so a violation fails `cargo
//! test` even when CI's dedicated audit job is skipped.

use std::path::Path;

#[test]
fn workspace_has_no_model_lint_violations() {
    let root = Path::new(env!("CARGO_MANIFEST_DIR"))
        .ancestors()
        .nth(2)
        .expect("crates/audit sits two levels below the workspace root")
        .to_path_buf();
    let report = audit::scan_workspace(&root).expect("scan must succeed");
    assert!(
        report.files_checked > 50,
        "scan looked at too few files ({}) — wrong root?",
        report.files_checked
    );
    assert!(
        report.findings.is_empty(),
        "model-lint violations:\n{}",
        report
            .findings
            .iter()
            .map(ToString::to_string)
            .collect::<Vec<_>>()
            .join("\n")
    );
    assert_eq!(audit::exit_code(&report), 0);
}
