//! Fixture tests: each rule must fire on a seeded violation (driving a
//! nonzero `--check` exit code) and stay quiet on the equivalent clean
//! or test-gated code.

use audit::rules::{self, RuleContext};
use audit::{exit_code, Allowlist, ScanReport};

/// A miniature canonical costs module, standing in for sgx-sim::costs.
const COSTS: &str = r#"
/// EWB.
pub const EWB_CYCLES: u64 = 12_000;
/// Round trip.
pub const ECALL_ROUND_TRIP_CYCLES: u64 = 17_000;
/// Derived: not a canonical literal of its own.
pub const EENTER_CYCLES: u64 = ECALL_ROUND_TRIP_CYCLES / 2;
/// Too small to claim (the eviction batch).
pub const EVICT_BATCH_PAGES: usize = 16;
"#;

/// A miniature counters module, standing in for mem-sim::counters.
const COUNTERS: &str = r#"
pub struct Counters {
    /// Walk cycles.
    pub walk_cycles: u64,
    /// Stalls.
    pub stall_cycles: u64,
}
"#;

fn ctx() -> RuleContext {
    RuleContext::from_sources(COSTS, COUNTERS)
}

#[test]
fn context_extracts_canonical_values_and_fields() {
    let c = ctx();
    assert_eq!(
        c.cost_values.get(&12_000).map(String::as_str),
        Some("EWB_CYCLES")
    );
    assert_eq!(
        c.cost_values.get(&17_000).map(String::as_str),
        Some("ECALL_ROUND_TRIP_CYCLES")
    );
    assert!(
        !c.cost_values.contains_key(&16),
        "batch size is below threshold"
    );
    assert_eq!(c.cost_values.len(), 2, "derived constants are not literals");
    assert!(c.counter_fields.contains("walk_cycles"));
    assert!(c.counter_fields.contains("stall_cycles"));
}

#[test]
fn seeded_cost_literal_is_caught_and_drives_nonzero_exit() {
    let src = "fn f() -> u64 { 12_000 }";
    let findings = rules::check_source("crates/core/src/env.rs", src, &ctx());
    assert_eq!(findings.len(), 1);
    assert_eq!(findings[0].rule, rules::COST_LITERALS);
    assert!(findings[0].message.contains("EWB_CYCLES"));
    let report = ScanReport {
        findings,
        files_checked: 1,
        ..ScanReport::default()
    };
    assert_eq!(exit_code(&report, false), 1, "--check must exit nonzero");
}

#[test]
fn cost_literal_in_comment_string_or_test_is_fine() {
    let src = r#"
// A comment may cite 12_000 cycles freely.
fn f() -> &'static str { "12_000" }
#[cfg(test)]
mod tests {
    #[test]
    fn t() { assert_eq!(super::g(), 12_000); }
}
"#;
    assert!(rules::check_source("crates/core/src/env.rs", src, &ctx()).is_empty());
}

#[test]
fn cost_literal_in_canonical_module_or_tests_dir_is_fine() {
    let src = "pub const EWB_CYCLES: u64 = 12_000;";
    assert!(rules::check_source("crates/sgx-sim/src/costs.rs", src, &ctx()).is_empty());
    assert!(rules::check_source("tests/counters_consistency.rs", src, &ctx()).is_empty());
    assert!(rules::check_source("crates/sgx-sim/tests/properties.rs", src, &ctx()).is_empty());
}

#[test]
fn seeded_wallclock_read_is_caught_in_sim_crates_only() {
    let src = "use std::time::Instant;\nfn f() { let _ = Instant::now(); }";
    let findings = rules::check_source("crates/sgx-sim/src/machine.rs", src, &ctx());
    assert!(findings.iter().any(|f| f.rule == rules::WALLCLOCK));
    // The bench harness may legitimately time wall-clock.
    assert!(rules::check_source("crates/bench/src/lib.rs", src, &ctx())
        .iter()
        .all(|f| f.rule != rules::WALLCLOCK));
    // The sweep executor is in scope.
    assert!(rules::check_source("crates/core/src/sweep.rs", src, &ctx())
        .iter()
        .any(|f| f.rule == rules::WALLCLOCK));
    // The fault-injection plane schedules in simulated cycles only.
    assert!(
        rules::check_source("crates/faults/src/hook.rs", src, &ctx())
            .iter()
            .any(|f| f.rule == rules::WALLCLOCK)
    );
    // The co-tenant host scheduler interleaves in simulated cycles; a
    // wall-clock read there would break the `--jobs` byte-identity.
    assert!(
        rules::check_source("crates/sgx-sim/src/host.rs", src, &ctx())
            .iter()
            .any(|f| f.rule == rules::WALLCLOCK)
    );
    // Checkpoint IO is host-side harness code, out of scope.
    assert!(
        rules::check_source("crates/core/src/checkpoint.rs", src, &ctx())
            .iter()
            .all(|f| f.rule != rules::WALLCLOCK)
    );
}

/// The cross-enclave relay is simulation-time code on all three axes: a
/// wall-clock read, a panic path, or a direct filesystem write in
/// `crates/relay/src` must each be caught.
#[test]
fn relay_sources_are_in_wallclock_unwrap_and_fs_scopes() {
    let clock = "use std::time::Instant;\nfn f() { let _ = Instant::now(); }";
    assert!(
        rules::check_source("crates/relay/src/net.rs", clock, &ctx())
            .iter()
            .any(|f| f.rule == rules::WALLCLOCK),
        "the delivery queue must stay on simulated cycles"
    );
    let panicky = "fn f(x: Option<u64>) -> u64 { x.unwrap() }";
    assert!(
        rules::check_source("crates/relay/src/mpc.rs", panicky, &ctx())
            .iter()
            .any(|f| f.rule == rules::UNWRAP),
        "quorum loss must be a value, not a panic"
    );
    let fs = "fn f() { std::fs::write(\"x\", \"y\").ok(); }";
    assert!(
        rules::check_source("crates/relay/src/detector.rs", fs, &ctx())
            .iter()
            .any(|f| f.rule == rules::FS_WRITE),
        "relay artifacts must go through ArtifactIo"
    );
    // Relay test trees stay free to do all three.
    for bad in [clock, panicky, fs] {
        assert!(rules::check_source("crates/relay/tests/x.rs", bad, &ctx()).is_empty());
    }
}

#[test]
fn seeded_counter_cast_is_caught() {
    let src = "fn f(c: &Counters) -> u32 { c.walk_cycles as u32 }";
    let findings = rules::check_source("crates/mem-sim/src/report.rs", src, &ctx());
    assert_eq!(findings.len(), 1);
    assert_eq!(findings[0].rule, rules::COUNTER_CAST);
    // Widening to u128 and float math outside the sim crates are fine.
    let ok = "fn f(c: &Counters) -> u128 { c.walk_cycles as u128 }";
    assert!(rules::check_source("crates/mem-sim/src/report.rs", ok, &ctx()).is_empty());
    assert!(rules::check_source("crates/gauge-stats/src/lib.rs", src, &ctx()).is_empty());
}

#[test]
fn seeded_unwrap_and_expect_are_caught_outside_tests() {
    let src = r#"
fn f(x: Option<u64>) -> u64 { x.unwrap() }
fn g(x: Option<u64>) -> u64 { x.expect("msg here") }
#[cfg(test)]
mod tests {
    fn t(x: Option<u64>) -> u64 { x.unwrap() }
}
"#;
    let findings = rules::check_source("crates/libos-sim/src/process.rs", src, &ctx());
    assert_eq!(findings.len(), 2);
    assert!(findings.iter().all(|f| f.rule == rules::UNWRAP));
    assert!(
        findings.iter().any(|f| f.message.contains("msg here")),
        "expect message is carried for allowlist matching: {findings:?}"
    );
    // unwrap_or / unwrap_or_default are error handling, not panics.
    let ok = "fn f(x: Option<u64>) -> u64 { x.unwrap_or(0).max(x.unwrap_or_default()) }";
    assert!(rules::check_source("crates/libos-sim/src/process.rs", ok, &ctx()).is_empty());
    // The co-tenant host surfaces scheduler errors as `HostError`
    // values; a panic there would kill a whole multi-tenant run.
    assert!(
        rules::check_source("crates/sgx-sim/src/host.rs", src, &ctx())
            .iter()
            .any(|f| f.rule == rules::UNWRAP)
    );
}

#[test]
fn seeded_fs_write_is_caught_in_core_outside_the_io_backend() {
    let src = "fn f() { std::fs::write(\"x\", \"y\").ok(); }";
    let findings = rules::check_source("crates/core/src/emit.rs", src, &ctx());
    assert_eq!(findings.len(), 1);
    assert_eq!(findings[0].rule, rules::FS_WRITE);
    assert!(findings[0].message.contains("ArtifactIo"));
    // The real backend is the one sanctioned std::fs user.
    assert!(rules::check_source("crates/core/src/io.rs", src, &ctx()).is_empty());
    // Other crates (the bench harness, the sim crates) are out of scope.
    assert!(rules::check_source("crates/bench/src/lib.rs", src, &ctx()).is_empty());
}

#[test]
fn fs_write_catches_file_handles_and_ignores_test_code() {
    let src = r#"
use std::fs::File;
fn f() { let _ = File::create("x"); }
fn g() { let _ = std::fs::OpenOptions::new(); }
"#;
    let findings = rules::check_source("crates/core/src/checkpoint.rs", src, &ctx());
    assert!(findings.iter().all(|f| f.rule == rules::FS_WRITE));
    assert!(
        findings.len() >= 3,
        "import, File::create, and OpenOptions all fire: {findings:?}"
    );
    let test_only = r#"
#[cfg(test)]
mod tests {
    #[test]
    fn t() { std::fs::write("x", "y").ok(); }
}
"#;
    assert!(rules::check_source("crates/core/src/checkpoint.rs", test_only, &ctx()).is_empty());
}

#[test]
fn unwrap_and_wallclock_scopes_cover_the_artifact_io_plane() {
    let unwrap_src = "fn f(x: Option<u64>) -> u64 { x.unwrap() }";
    assert!(
        rules::check_source("crates/core/src/io.rs", unwrap_src, &ctx())
            .iter()
            .any(|f| f.rule == rules::UNWRAP)
    );
    // Poison recovery on the chaos-state mutex is handling, not a panic.
    let ok = "fn f(m: &Mutex<u64>) -> u64 { *m.lock().unwrap_or_else(|p| p.into_inner()) }";
    assert!(rules::check_source("crates/core/src/io.rs", ok, &ctx()).is_empty());
    let clock_src = "fn f() { let _ = Instant::now(); }";
    assert!(
        rules::check_source("crates/core/src/io.rs", clock_src, &ctx())
            .iter()
            .any(|f| f.rule == rules::WALLCLOCK)
    );
}

#[test]
fn allowlist_suppresses_by_path_and_message() {
    let src = "fn g(x: Option<u64>) -> u64 { x.expect(\"pool is non-empty\") }";
    let findings = rules::check_source("crates/sgx-sim/src/switchless.rs", src, &ctx());
    assert_eq!(findings.len(), 1);
    let allow = Allowlist::from_str_for_rule(
        rules::UNWRAP,
        "crates/sgx-sim/src/switchless.rs pool is non-empty",
    );
    assert!(allow.permits(&findings[0]));
    let other = Allowlist::from_str_for_rule(rules::UNWRAP, "switchless.rs some other panic");
    assert!(!other.permits(&findings[0]));
}
