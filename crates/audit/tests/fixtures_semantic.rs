//! Fixture tests for the semantic passes: each pass must fire on a
//! seeded violation (known positive) and stay quiet on the equivalent
//! clean code (known negative), end to end through [`audit::scan_sources`]
//! — i.e. through the same parser → call graph → pass → suppression
//! pipeline the CLI runs, not through pass internals.
//!
//! The `planted_*` tests at the bottom run against the *real* workspace
//! sources: they prove the hot-path pass actually covers the
//! `access_stream` call graph (the finding set changes when an
//! allocation is planted in a function reachable from it) and that the
//! determinism pass watches the real emission plane.

use audit::passes::cycles::CycleManifest;
use audit::rules::{self, RuleContext};
use audit::{scan_sources, Allowlist, Baseline, Finding, ScanReport};
use std::fs;
use std::path::{Path, PathBuf};

/// A miniature canonical costs module, standing in for sgx-sim::costs.
const COSTS: &str = "pub const EWB_CYCLES: u64 = 12_000;\n\
                     pub const ECALL_ROUND_TRIP_CYCLES: u64 = 17_000;";

/// A miniature counters module, standing in for mem-sim::counters.
const COUNTERS: &str = "pub struct Counters {\n\
                            pub walk_cycles: u64,\n\
                            pub epc_faults: u64,\n\
                        }";

fn ctx() -> RuleContext {
    RuleContext::from_sources(COSTS, COUNTERS)
}

/// Scans sources with no suppression planes and returns the findings
/// for `rule` only (the mini fixtures can trip unrelated token rules).
fn findings_for(sources: &[(&str, &str)], rule: &str) -> Vec<Finding> {
    let owned: Vec<(String, String)> = sources
        .iter()
        .map(|(p, s)| (p.to_string(), s.to_string()))
        .collect();
    let report = scan_sources(
        &owned,
        &ctx(),
        &Allowlist::default(),
        &Baseline::default(),
        &CycleManifest::default(),
    );
    report
        .findings
        .into_iter()
        .filter(|f| f.rule == rule)
        .collect()
}

// ---- hash-iter (determinism pass) ----------------------------------

#[test]
fn hash_iter_positive_emission_reachable_hash_iteration() {
    let f = findings_for(
        &[
            (
                "crates/core/src/emit.rs",
                "impl Emitter { pub fn emit(&self) {} }",
            ),
            (
                "crates/core/src/stats.rs",
                "use std::collections::HashMap;\n\
                 fn render_all(rows: &HashMap<String, u64>, e: &Emitter) {\n\
                     for (k, v) in rows.iter() { push_row(k, v); }\n\
                     e.emit();\n\
                 }\n\
                 fn push_row(_k: &str, _v: &u64) {}",
            ),
        ],
        rules::HASH_ITER,
    );
    assert_eq!(f.len(), 1, "{f:?}");
    assert!(f[0].message.contains("rows"));
    assert_eq!(f[0].file, "crates/core/src/stats.rs");
}

#[test]
fn hash_iter_negative_sorted_and_unreachable_iterations() {
    // Sorted before use: clean even though emission-reachable.
    let sorted = findings_for(
        &[
            (
                "crates/core/src/emit.rs",
                "impl Emitter { pub fn emit(&self) {} }",
            ),
            (
                "crates/core/src/stats.rs",
                "use std::collections::HashMap;\n\
                 fn render_all(rows: &HashMap<String, u64>, e: &Emitter) {\n\
                     let mut keys: Vec<_> = rows.iter().collect();\n\
                     keys.sort();\n\
                     e.emit();\n\
                 }",
            ),
        ],
        rules::HASH_ITER,
    );
    assert!(sorted.is_empty(), "{sorted:?}");
    // Unsorted but nowhere near an emission sink: clean.
    let unreachable = findings_for(
        &[(
            "crates/mem-sim/src/scratch.rs",
            "use std::collections::HashMap;\n\
             fn tally(rows: &HashMap<String, u64>) -> u64 {\n\
                 let mut t = 0; for (_, v) in rows.iter() { t += *v; } t\n\
             }",
        )],
        rules::HASH_ITER,
    );
    assert!(unreachable.is_empty(), "{unreachable:?}");
}

// ---- cycle-routing (cycle-conservation pass) -----------------------

#[test]
fn cycle_routing_positive_unrouted_counter_mutation() {
    let f = findings_for(
        &[(
            "crates/sgx-sim/src/machine.rs",
            "impl SgxMachine { fn tick(&mut self) { self.counters.epc_faults += 1; } }",
        )],
        rules::CYCLE_ROUTING,
    );
    assert_eq!(f.len(), 1, "{f:?}");
    assert!(f[0].message.contains("SgxMachine::tick"));
}

#[test]
fn cycle_routing_negative_costs_routed_or_manifested() {
    // Routed through the canonical constants: clean.
    let routed = findings_for(
        &[(
            "crates/sgx-sim/src/machine.rs",
            "impl SgxMachine { fn fault(&mut self) { self.walk_cycles += costs::EWB_CYCLES; } }",
        )],
        rules::CYCLE_ROUTING,
    );
    assert!(routed.is_empty(), "{routed:?}");
    // Declared in the manifest: clean, and the entry is not stale.
    let sources = vec![(
        "crates/sgx-sim/src/machine.rs".to_string(),
        "impl SgxMachine { fn flush(&mut self) { self.counters.epc_faults += 1; } }".to_string(),
    )];
    let manifest = CycleManifest::parse(
        "crates/audit/manifests/cycle-routing.manifest",
        "crates/sgx-sim/src/machine.rs SgxMachine::flush\n",
    );
    let report = scan_sources(
        &sources,
        &ctx(),
        &Allowlist::default(),
        &Baseline::default(),
        &manifest,
    );
    let f: Vec<_> = report
        .findings
        .iter()
        .filter(|f| f.rule == rules::CYCLE_ROUTING)
        .collect();
    assert!(f.is_empty(), "{f:?}");
}

#[test]
fn cycle_routing_stale_manifest_entry_fails_the_scan() {
    let sources = vec![(
        "crates/sgx-sim/src/machine.rs".to_string(),
        "impl SgxMachine { fn quiet(&self) {} }".to_string(),
    )];
    let manifest = CycleManifest::parse(
        "crates/audit/manifests/cycle-routing.manifest",
        "crates/sgx-sim/src/machine.rs SgxMachine::gone\n",
    );
    let report = scan_sources(
        &sources,
        &ctx(),
        &Allowlist::default(),
        &Baseline::default(),
        &manifest,
    );
    assert!(
        report
            .findings
            .iter()
            .any(|f| f.rule == rules::CYCLE_ROUTING && f.message.contains("stale manifest entry")),
        "{:?}",
        report.findings
    );
    assert_eq!(audit::exit_code(&report, false), 1);
}

// ---- hot-path (purity pass) ----------------------------------------

#[test]
fn hot_path_positive_allocation_in_reachable_helper() {
    let f = findings_for(
        &[(
            "crates/mem-sim/src/machine.rs",
            "impl Machine {\n\
                 pub fn access(&mut self, a: u64) { self.walk(a); }\n\
                 fn walk(&mut self, a: u64) { let mut v = Vec::new(); v.push(a); }\n\
             }",
        )],
        rules::HOT_PATH,
    );
    assert!(
        f.iter().any(|x| x.message.contains("Machine::walk")),
        "{f:?}"
    );
}

#[test]
fn hot_path_negative_unreachable_and_gated_code() {
    // Same allocation, but in a function the hot path never calls.
    let cold = findings_for(
        &[(
            "crates/mem-sim/src/machine.rs",
            "impl Machine {\n\
                 pub fn access(&mut self, a: u64) { self.step(a); }\n\
                 fn step(&mut self, _a: u64) {}\n\
                 pub fn report(&self) -> Vec<u64> { let mut v = Vec::new(); v.push(1); v }\n\
             }",
        )],
        rules::HOT_PATH,
    );
    assert!(cold.is_empty(), "{cold:?}");
    // Audit-gated diagnostics are compiled out of release: clean.
    let gated = findings_for(
        &[(
            "crates/mem-sim/src/machine.rs",
            "impl Machine {\n\
                 pub fn access(&mut self, a: u64) { self.step(a); }\n\
                 #[cfg(feature = \"audit\")]\n\
                 fn step(&mut self, a: u64) { assert!(a > 0); let _ = format!(\"{a}\"); }\n\
                 #[cfg(not(feature = \"audit\"))]\n\
                 fn step(&mut self, _a: u64) {}\n\
             }",
        )],
        rules::HOT_PATH,
    );
    assert!(gated.is_empty(), "{gated:?}");
}

// ---- phase-balance --------------------------------------------------

#[test]
fn phase_balance_positive_unclosed_span() {
    let f = findings_for(
        &[(
            "crates/workloads/src/btree.rs",
            "fn run(env: &mut Env) { env.phase(\"build\"); work(env); }",
        )],
        rules::PHASE_BALANCE,
    );
    assert_eq!(f.len(), 1, "{f:?}");
    assert!(f[0].message.contains("\"build\""));
}

#[test]
fn phase_balance_negative_balanced_and_with_phase() {
    let f = findings_for(
        &[(
            "crates/workloads/src/btree.rs",
            "fn run(env: &mut Env) {\n\
                 env.phase(\"build\"); work(env); env.phase_end(\"build\")?;\n\
                 env.with_phase(\"query\", |e| probe(e))?;\n\
             }",
        )],
        rules::PHASE_BALANCE,
    );
    assert!(f.is_empty(), "{f:?}");
}

// ---- planted-violation tests over the real workspace ----------------

fn workspace_root() -> PathBuf {
    Path::new(env!("CARGO_MANIFEST_DIR"))
        .ancestors()
        .nth(2)
        .expect("crates/audit sits two levels below the workspace root")
        .to_path_buf()
}

/// Reads the real simulator sources the semantic passes analyze.
fn real_sources() -> Vec<(String, String)> {
    let root = workspace_root();
    let mut out = Vec::new();
    let mut stack = vec![root.join("crates")];
    while let Some(dir) = stack.pop() {
        for entry in fs::read_dir(&dir).expect("read workspace dir") {
            let path = entry.expect("dir entry").path();
            let name = path
                .file_name()
                .unwrap_or_default()
                .to_string_lossy()
                .to_string();
            if path.is_dir() {
                if name != "target" && !name.starts_with('.') {
                    stack.push(path);
                }
            } else if name.ends_with(".rs") {
                let rel = path
                    .strip_prefix(&root)
                    .expect("under root")
                    .to_string_lossy()
                    .replace('\\', "/");
                out.push((rel, fs::read_to_string(&path).expect("read source")));
            }
        }
    }
    out.sort();
    out
}

fn scan_real(sources: &[(String, String)]) -> ScanReport {
    let root = workspace_root();
    let ctx = audit::load_context(&root).expect("context");
    let allow = Allowlist::load(&root.join("crates/audit/allowlists")).expect("allowlists");
    let baseline = Baseline::load(&root.join(audit::BASELINE_PATH)).expect("baseline");
    let manifest = audit::load_manifest(&root).expect("manifest");
    scan_sources(sources, &ctx, &allow, &baseline, &manifest)
}

/// The acceptance check from the issue: the hot-path pass demonstrably
/// covers the `access_stream` call graph. Planting an allocation in a
/// function transitively reachable from `Machine::access_stream` (the
/// TLB probe, two hops down) must change the finding set; removing it
/// must restore the clean scan.
#[test]
fn planted_allocation_in_real_tlb_probe_changes_the_finding_set() {
    let clean = real_sources();
    let before = scan_real(&clean);
    assert!(
        before.findings.is_empty(),
        "workspace must start clean:\n{:?}",
        before.findings
    );
    let mut planted = clean.clone();
    let tlb = planted
        .iter_mut()
        .find(|(p, _)| p == "crates/mem-sim/src/tlb.rs")
        .expect("tlb.rs exists");
    // Plant next to `Tlb::translate`, which access_stream reaches
    // through its translate! macro; `leak_probe` is a marker we can
    // assert on.
    let needle = "pub fn translate(";
    assert!(tlb.1.contains(needle), "Tlb::translate moved?");
    tlb.1 = tlb.1.replace(
        needle,
        "pub fn leak_probe(&self) -> Vec<u64> { let mut v = Vec::new(); v.push(1); v }\n    pub fn translate(",
    );
    // Defined but never called: not reachable, finding set unchanged.
    let after_no_call = scan_real(&planted);
    assert!(
        after_no_call.findings.is_empty(),
        "an uncalled helper is not hot-path reachable:\n{:?}",
        after_no_call.findings
    );
    let tlb = planted
        .iter_mut()
        .find(|(p, _)| p == "crates/mem-sim/src/tlb.rs")
        .expect("tlb.rs exists");
    let body_marker = "pub fn translate(";
    let idx = tlb.1.find(body_marker).expect("translate present");
    let brace = tlb.1[idx..].find('{').expect("translate body") + idx + 1;
    tlb.1
        .insert_str(brace, " let _planted = self.leak_probe(); ");
    let after = scan_real(&planted);
    let planted_findings: Vec<_> = after
        .findings
        .iter()
        .filter(|f| f.rule == rules::HOT_PATH && f.message.contains("leak_probe"))
        .collect();
    assert!(
        !planted_findings.is_empty(),
        "planted allocation must surface once called from the hot path:\n{:?}",
        after.findings
    );
}

/// Planting an unsorted hash iteration into the real sweep plane must
/// trip the determinism pass — but only once it is wired to reach the
/// real emission sinks, which proves the reverse-reachability edge, not
/// just the pattern match.
#[test]
fn planted_hash_iteration_in_real_sweep_path_is_caught() {
    let mut sources = real_sources();
    let sweep_rs = sources
        .iter_mut()
        .find(|(p, _)| p == "crates/core/src/sweep.rs")
        .expect("sweep.rs exists");
    // Stage 1: the planted rollup only feeds a local stub — it cannot
    // reach an emission sink, so the determinism pass stays quiet. The
    // body deliberately avoids method names the workspace defines
    // (push, insert, ...): the call graph's method-name fan-out would
    // make even the unwired version reach a sink through them.
    sweep_rs.1.push_str(
        "\npub fn planted_rollup(planted_rows: &std::collections::HashMap<String, u64>) -> u64 {\n\
             let mut t = 0u64;\n\
             for (_k, v) in planted_rows.iter() { t = t.wrapping_add(*v); }\n\
             planted_sink_stub(t);\n\
             t\n\
         }\n\
         fn planted_sink_stub(_t: u64) {}\n",
    );
    let after = scan_real(&sources);
    assert!(
        !after
            .findings
            .iter()
            .any(|f| f.rule == rules::HASH_ITER && f.message.contains("planted_rows")),
        "not yet emission-reachable:\n{:?}",
        after.findings
    );
    // Stage 2: route the stub into the real render plane; the same
    // iteration is now emission-reachable and must be flagged.
    let sweep_rs = sources
        .iter_mut()
        .find(|(p, _)| p == "crates/core/src/sweep.rs")
        .expect("sweep.rs exists");
    sweep_rs.1 = sweep_rs.1.replace(
        "fn planted_sink_stub(_t: u64) {}",
        "fn planted_sink_stub(_t: u64) { render(); }",
    );
    let wired = scan_real(&sources);
    assert!(
        wired
            .findings
            .iter()
            .any(|f| f.rule == rules::HASH_ITER && f.message.contains("planted_rows")),
        "hash iteration feeding the render plane must be flagged:\n{:?}",
        wired.findings
    );
}
