//! JSONL rendering of trace records.
//!
//! Hand-rolled like the checkpoint writer (the build is offline, no
//! serde); the emitted text is deterministic — key order is fixed and
//! every value is an integer, a bool or an escaped string — which is what
//! lets the test suite demand byte-identical traces across runs and
//! `--jobs` values.

use crate::event::{CounterSnapshot, TraceEvent, TraceRecord};
use crate::sink::TraceSink;
use std::fmt::Write as _;

fn push_snap(out: &mut String, snap: &CounterSnapshot) {
    out.push('{');
    for (i, (name, v)) in snap.fields().iter().enumerate() {
        if i > 0 {
            out.push(',');
        }
        let _ = write!(out, "\"{name}\":{v}");
    }
    out.push('}');
}

impl TraceSink {
    /// Renders one record as a single JSON object (no trailing newline).
    pub fn json_line(&self, r: &TraceRecord) -> String {
        let mut out = String::new();
        let _ = write!(
            out,
            "{{\"seq\":{},\"cycles\":{},\"thread\":{},\"event\":",
            r.seq, r.cycles, r.thread
        );
        match r.event {
            TraceEvent::EcallEnter => out.push_str("\"ecall_enter\""),
            TraceEvent::EcallExit => out.push_str("\"ecall_exit\""),
            TraceEvent::Ocall { switchless } => {
                let _ = write!(out, "\"ocall\",\"switchless\":{switchless}");
            }
            TraceEvent::Aex { injected } => {
                let _ = write!(out, "\"aex\",\"injected\":{injected}");
            }
            TraceEvent::EpcFault {
                loadback,
                evicted,
                resident_pages,
            } => {
                let _ = write!(
                    out,
                    "\"epc_fault\",\"loadback\":{loadback},\"evicted\":{evicted},\
                     \"resident_pages\":{resident_pages}"
                );
            }
            TraceEvent::ShimSyscall { host } => {
                let _ = write!(out, "\"shim_syscall\",\"host\":{host}");
            }
            TraceEvent::FaultInjected { kind } => {
                let _ = write!(out, "\"fault_injected\",\"kind\":\"{}\"", kind.name());
            }
            TraceEvent::PhaseBegin { id, snap } => {
                let _ = write!(
                    out,
                    "\"phase_begin\",\"phase\":\"{}\",\"snap\":",
                    escape(self.phase_name(id))
                );
                push_snap(&mut out, &snap);
            }
            TraceEvent::PhaseEnd { id, snap } => {
                let _ = write!(
                    out,
                    "\"phase_end\",\"phase\":\"{}\",\"snap\":",
                    escape(self.phase_name(id))
                );
                push_snap(&mut out, &snap);
            }
            TraceEvent::Sample { snap } => {
                out.push_str("\"sample\",\"snap\":");
                push_snap(&mut out, &snap);
            }
        }
        out.push('}');
        out
    }

    /// Renders the whole retained stream as JSONL: a header line with
    /// drop accounting, then one line per record, oldest first.
    pub fn render_jsonl(&self) -> String {
        let mut out = String::new();
        let _ = writeln!(
            out,
            "{{\"trace\":\"sgxgauge\",\"records\":{},\"dropped\":{},\"emitted\":{}}}",
            self.len(),
            self.dropped(),
            self.emitted()
        );
        for r in self.records() {
            out.push_str(&self.json_line(r));
            out.push('\n');
        }
        out
    }
}

pub(crate) fn escape(s: &str) -> String {
    let mut out = String::with_capacity(s.len());
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\t' => out.push_str("\\t"),
            '\r' => out.push_str("\\r"),
            c if (c as u32) < 0x20 => {
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::event::InjectedKind;

    #[test]
    fn lines_are_stable_and_self_describing() {
        let mut s = TraceSink::with_config(16, 0);
        s.emit(42, 1, TraceEvent::EcallEnter);
        s.emit(
            99,
            0,
            TraceEvent::EpcFault {
                loadback: true,
                evicted: 16,
                resident_pages: 23_552,
            },
        );
        s.emit(
            120,
            0,
            TraceEvent::FaultInjected {
                kind: InjectedKind::EpcSpike,
            },
        );
        let text = s.render_jsonl();
        let lines: Vec<&str> = text.lines().collect();
        assert_eq!(lines.len(), 4, "header + 3 records");
        assert_eq!(
            lines[0],
            "{\"trace\":\"sgxgauge\",\"records\":3,\"dropped\":0,\"emitted\":3}"
        );
        assert_eq!(
            lines[1],
            "{\"seq\":0,\"cycles\":42,\"thread\":1,\"event\":\"ecall_enter\"}"
        );
        assert!(lines[2].contains("\"loadback\":true"));
        assert!(lines[2].contains("\"resident_pages\":23552"));
        assert!(lines[3].contains("\"kind\":\"epc_spike\""));
    }

    #[test]
    fn rendering_is_deterministic() {
        let build = || {
            let mut s = TraceSink::with_config(8, 0);
            for i in 0..12u64 {
                s.emit(i * 7, 0, TraceEvent::Ocall { switchless: false });
            }
            s.begin_phase("p", 100, 0, CounterSnapshot::default());
            s.end_phase("p", 200, 0, CounterSnapshot::default())
                .unwrap();
            s.render_jsonl()
        };
        assert_eq!(build(), build());
    }

    #[test]
    fn phase_names_are_escaped() {
        let mut s = TraceSink::with_config(8, 0);
        s.begin_phase("a\"b", 1, 0, CounterSnapshot::default());
        let text = s.render_jsonl();
        assert!(text.contains("a\\\"b"));
    }
}
