//! Analysis passes: counter timelines and per-phase cycle attribution.

use crate::event::{CounterSnapshot, TraceEvent, TraceRecord};
use crate::sink::TraceSink;

/// One point of a counter timeline: the snapshot carried by a periodic
/// sample or a phase boundary.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct TimelinePoint {
    /// Simulated cycle clock of the emitting thread.
    pub cycles: u64,
    /// Cumulative counter state at that instant.
    pub snap: CounterSnapshot,
}

/// Extracts the counter timeline from a record stream: every record that
/// carries a snapshot (periodic samples and phase boundaries), in
/// emission order.
pub fn timeline<'a>(records: impl Iterator<Item = &'a TraceRecord>) -> Vec<TimelinePoint> {
    records
        .filter_map(|r| match r.event {
            TraceEvent::Sample { snap }
            | TraceEvent::PhaseBegin { snap, .. }
            | TraceEvent::PhaseEnd { snap, .. } => Some(TimelinePoint {
                cycles: r.cycles,
                snap,
            }),
            _ => None,
        })
        .collect()
}

/// Cycle attribution of one workload-declared phase: where the span's
/// cycles went, in the paper's categories.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct PhaseAttribution {
    /// Phase name.
    pub phase: String,
    /// Thread clock when the span opened.
    pub start_cycles: u64,
    /// Thread clock when the span closed.
    pub end_cycles: u64,
    /// Application cycles: span length minus every overhead category
    /// below (compute, plain memory stalls, page walks).
    pub app_cycles: u64,
    /// ECALL/OCALL/AEX transition cycles.
    pub transition_cycles: u64,
    /// EPC paging cycles (fault handling, EWB/ELDU batches).
    pub paging_cycles: u64,
    /// MEE premium: extra DRAM stall cycles paid for encrypted memory.
    pub mee_cycles: u64,
    /// Retry-backoff cycles charged against this span. Backoff happens
    /// at the sweep layer between attempts, so this is zero for inner
    /// phases and only populated on a whole-run row by the sweep.
    pub backoff_cycles: u64,
    /// EPC faults taken inside the span.
    pub epc_faults: u64,
}

impl PhaseAttribution {
    /// Total span length in cycles.
    pub fn total_cycles(&self) -> u64 {
        self.end_cycles.saturating_sub(self.start_cycles)
    }
}

impl TraceSink {
    /// The counter timeline of the retained records (see [`timeline`]).
    pub fn timeline(&self) -> Vec<TimelinePoint> {
        timeline(self.records())
    }

    /// Derives the per-phase cycle-attribution breakdown from the phase
    /// boundary snapshots, which are retained outside the ring — so the
    /// breakdown survives traces whose bulk events overflowed it.
    /// Nested spans each get their own row, with inner cycles counted
    /// in both (spans, not a partition).
    pub fn phase_attribution(&self) -> Vec<PhaseAttribution> {
        let mut open: Vec<(u32, u64, CounterSnapshot)> = Vec::new();
        let mut out = Vec::new();
        for r in self.boundary_records() {
            match r.event {
                TraceEvent::PhaseBegin { id, snap } => open.push((id.0, r.cycles, snap)),
                TraceEvent::PhaseEnd { id, snap } => {
                    let Some(pos) = open.iter().rposition(|&(open_id, _, _)| open_id == id.0)
                    else {
                        continue; // unmatched end; the sink rejects these
                    };
                    let (_, start_cycles, start) = open.remove(pos);
                    let d = snap.delta(&start);
                    let total = r.cycles.saturating_sub(start_cycles);
                    let overhead = d.transition_cycles + d.fault_cycles + d.mee_cycles;
                    out.push(PhaseAttribution {
                        phase: self.phase_name(crate::PhaseId(id.0)).to_owned(),
                        start_cycles,
                        end_cycles: r.cycles,
                        app_cycles: total.saturating_sub(overhead),
                        transition_cycles: d.transition_cycles,
                        paging_cycles: d.fault_cycles,
                        mee_cycles: d.mee_cycles,
                        backoff_cycles: 0,
                        epc_faults: d.epc_faults,
                    });
                }
                _ => {}
            }
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn timeline_keeps_only_snapshot_records() {
        let mut s = TraceSink::with_config(64, 0);
        s.emit(1, 0, TraceEvent::EcallEnter);
        s.emit(
            5,
            0,
            TraceEvent::Sample {
                snap: CounterSnapshot {
                    epc_faults: 3,
                    ..Default::default()
                },
            },
        );
        s.emit(7, 0, TraceEvent::EcallExit);
        let tl = s.timeline();
        assert_eq!(tl.len(), 1);
        assert_eq!(tl[0].cycles, 5);
        assert_eq!(tl[0].snap.epc_faults, 3);
    }

    #[test]
    fn attribution_subtracts_boundary_snapshots() {
        let mut s = TraceSink::with_config(64, 0);
        let at = |transition, fault, mee, faults| CounterSnapshot {
            transition_cycles: transition,
            fault_cycles: fault,
            mee_cycles: mee,
            epc_faults: faults,
            ..Default::default()
        };
        s.begin_phase("build", 100, 0, at(10, 0, 5, 0));
        s.end_phase("build", 1_100, 0, at(110, 300, 105, 7))
            .unwrap();
        let rows = s.phase_attribution();
        assert_eq!(rows.len(), 1);
        let row = &rows[0];
        assert_eq!(row.phase, "build");
        assert_eq!(row.total_cycles(), 1_000);
        assert_eq!(row.transition_cycles, 100);
        assert_eq!(row.paging_cycles, 300);
        assert_eq!(row.mee_cycles, 100);
        assert_eq!(row.epc_faults, 7);
        assert_eq!(row.app_cycles, 1_000 - 100 - 300 - 100);
        assert_eq!(row.backoff_cycles, 0);
    }

    #[test]
    fn attribution_survives_ring_overflow() {
        let mut s = TraceSink::with_config(4, 0);
        let zero = CounterSnapshot::default();
        s.begin_phase("run", 0, 0, zero);
        for i in 0..100 {
            s.emit(i + 1, 0, TraceEvent::EcallEnter);
        }
        s.end_phase("run", 1_000, 0, zero).unwrap();
        assert!(s.dropped() > 0, "ring must have overflowed");
        let rows = s.phase_attribution();
        assert_eq!(rows.len(), 1, "span lost to overwrite");
        assert_eq!(rows[0].phase, "run");
        assert_eq!(rows[0].total_cycles(), 1_000);
    }

    #[test]
    fn nested_spans_each_get_a_row() {
        let mut s = TraceSink::with_config(64, 0);
        let zero = CounterSnapshot::default();
        s.begin_phase("outer", 0, 0, zero);
        s.begin_phase("inner", 10, 0, zero);
        s.end_phase("inner", 20, 0, zero).unwrap();
        s.end_phase("outer", 50, 0, zero).unwrap();
        let rows = s.phase_attribution();
        assert_eq!(rows.len(), 2);
        assert_eq!(rows[0].phase, "inner");
        assert_eq!(rows[1].phase, "outer");
        assert_eq!(rows[1].total_cycles(), 50);
    }
}
