//! The bounded ring-buffer sink.

use crate::event::{CounterSnapshot, PhaseId, TraceEvent, TraceRecord};
use std::error::Error;
use std::fmt;

/// Default ring capacity, in records.
pub const DEFAULT_CAPACITY: usize = 1 << 16;

/// Default periodic-sample spacing, in simulated cycles.
pub const DEFAULT_SAMPLE_INTERVAL: u64 = 1 << 20;

/// Misuse of the phase-span API, reported as a value (never a panic):
/// the sweep executor must survive a workload that mismatches its spans.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum TraceError {
    /// A span was still open when the trace was finalized.
    UnclosedPhase {
        /// Name of the innermost open span.
        phase: String,
    },
    /// A span was closed out of order.
    PhaseMismatch {
        /// The innermost open span that should have closed first.
        expected: String,
        /// The name the caller tried to close.
        found: String,
    },
    /// A span was closed while none was open.
    NoOpenPhase {
        /// The name the caller tried to close.
        found: String,
    },
}

impl fmt::Display for TraceError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            TraceError::UnclosedPhase { phase } => {
                write!(f, "phase `{phase}` was never closed")
            }
            TraceError::PhaseMismatch { expected, found } => {
                write!(f, "phase `{found}` closed while `{expected}` is innermost")
            }
            TraceError::NoOpenPhase { found } => {
                write!(f, "phase `{found}` closed but no phase is open")
            }
        }
    }
}

impl Error for TraceError {}

/// A bounded ring buffer of [`TraceRecord`]s.
///
/// Records are appended in the program order of the owning simulation
/// (each sweep cell owns a private sink, so ordering is deterministic and
/// independent of how many OS threads drive the sweep). When the ring is
/// full the oldest record is overwritten and [`TraceSink::dropped`]
/// counts the loss; sequence numbers keep the surviving records globally
/// ordered.
#[derive(Debug, Clone)]
pub struct TraceSink {
    records: Vec<TraceRecord>,
    capacity: usize,
    /// Index of the oldest record once the ring has wrapped.
    head: usize,
    dropped: u64,
    seq: u64,
    sample_interval: u64,
    next_sample: u64,
    phases: Vec<String>,
    stack: Vec<PhaseId>,
    /// Phase-boundary records, duplicated outside the ring: spans are
    /// few (workload-declared) but their begin records are emitted
    /// first, making them the first casualties of ring overwrite — and
    /// losing a begin record silently erases the whole span from the
    /// attribution. Keeping boundaries aside makes `phase_attribution`
    /// immune to overflow by bulk events.
    boundaries: Vec<TraceRecord>,
}

impl Default for TraceSink {
    fn default() -> Self {
        TraceSink::new(DEFAULT_CAPACITY)
    }
}

impl TraceSink {
    /// A sink holding at most `capacity` records, sampling counters every
    /// [`DEFAULT_SAMPLE_INTERVAL`] simulated cycles.
    ///
    /// `capacity` is clamped to at least 1.
    pub fn new(capacity: usize) -> Self {
        TraceSink::with_config(capacity, DEFAULT_SAMPLE_INTERVAL)
    }

    /// A sink with explicit capacity and periodic-sample spacing
    /// (`sample_interval == 0` disables periodic samples).
    pub fn with_config(capacity: usize, sample_interval: u64) -> Self {
        TraceSink {
            records: Vec::new(),
            capacity: capacity.max(1),
            head: 0,
            dropped: 0,
            seq: 0,
            sample_interval,
            next_sample: sample_interval,
            phases: Vec::new(),
            stack: Vec::new(),
            boundaries: Vec::new(),
        }
    }

    /// Appends an event stamped with the emitting thread's clock.
    pub fn emit(&mut self, cycles: u64, thread: u32, event: TraceEvent) {
        if let TraceEvent::Sample { .. } = event {
            self.note_sample(cycles);
        }
        let record = TraceRecord {
            seq: self.seq,
            cycles,
            thread,
            event,
        };
        self.seq += 1;
        if matches!(
            event,
            TraceEvent::PhaseBegin { .. } | TraceEvent::PhaseEnd { .. }
        ) {
            self.boundaries.push(record);
        }
        if self.records.len() < self.capacity {
            self.records.push(record);
        } else {
            self.records[self.head] = record;
            self.head = (self.head + 1) % self.capacity;
            self.dropped += 1;
        }
    }

    /// Whether a periodic counter sample is due at simulated instant
    /// `cycles`. The caller (the SGX layer) assembles the snapshot and
    /// emits [`TraceEvent::Sample`], which re-arms the schedule.
    #[inline]
    pub fn sample_due(&self, cycles: u64) -> bool {
        self.sample_interval != 0 && cycles >= self.next_sample
    }

    /// The next simulated instant at which a periodic sample becomes
    /// due, or `u64::MAX` when periodic sampling is disabled.
    ///
    /// The schedule only ever moves forward (each recorded sample
    /// re-arms it later), so callers may cache this value as a
    /// conservative lower bound and skip consulting the sink entirely
    /// until their clock reaches it — the basis of the machine's cheap
    /// `trace_sample_due` fast path.
    #[inline]
    pub fn next_sample_at(&self) -> u64 {
        if self.sample_interval == 0 {
            u64::MAX
        } else {
            self.next_sample
        }
    }

    fn note_sample(&mut self, cycles: u64) {
        if self.sample_interval != 0 && cycles >= self.next_sample {
            // Re-arm at the next grid point strictly after `cycles`, so a
            // long stall does not trigger a catch-up burst of samples.
            self.next_sample = (cycles / self.sample_interval + 1) * self.sample_interval;
        }
    }

    /// Opens a phase span named `name` and records the boundary snapshot.
    pub fn begin_phase(
        &mut self,
        name: &str,
        cycles: u64,
        thread: u32,
        snap: CounterSnapshot,
    ) -> PhaseId {
        let id = self.intern(name);
        self.stack.push(id);
        self.emit(cycles, thread, TraceEvent::PhaseBegin { id, snap });
        id
    }

    /// Closes the innermost phase span, which must be named `name`.
    ///
    /// # Errors
    ///
    /// [`TraceError::NoOpenPhase`] when no span is open,
    /// [`TraceError::PhaseMismatch`] when the innermost span has a
    /// different name. Either way the sink stays usable.
    pub fn end_phase(
        &mut self,
        name: &str,
        cycles: u64,
        thread: u32,
        snap: CounterSnapshot,
    ) -> Result<(), TraceError> {
        let Some(&top) = self.stack.last() else {
            return Err(TraceError::NoOpenPhase { found: name.into() });
        };
        if self.phases[top.0 as usize] != name {
            return Err(TraceError::PhaseMismatch {
                expected: self.phases[top.0 as usize].clone(),
                found: name.into(),
            });
        }
        self.stack.pop();
        self.emit(cycles, thread, TraceEvent::PhaseEnd { id: top, snap });
        Ok(())
    }

    /// Validates that every span was closed.
    ///
    /// # Errors
    ///
    /// [`TraceError::UnclosedPhase`] naming the innermost open span.
    pub fn finish(&self) -> Result<(), TraceError> {
        match self.stack.last() {
            None => Ok(()),
            Some(&id) => Err(TraceError::UnclosedPhase {
                phase: self.phases[id.0 as usize].clone(),
            }),
        }
    }

    fn intern(&mut self, name: &str) -> PhaseId {
        if let Some(i) = self.phases.iter().position(|p| p == name) {
            return PhaseId(i as u32);
        }
        self.phases.push(name.to_owned());
        PhaseId((self.phases.len() - 1) as u32)
    }

    /// Resolves an interned phase id back to its name.
    pub fn phase_name(&self, id: PhaseId) -> &str {
        &self.phases[id.0 as usize]
    }

    /// Phase-boundary records in emission order. Unlike [`records`]
    /// (the bounded ring), boundaries are never lost to overwrite, so
    /// per-phase attribution survives traces that overflow on bulk
    /// events.
    ///
    /// [`records`]: TraceSink::records
    pub fn boundary_records(&self) -> impl Iterator<Item = &TraceRecord> {
        self.boundaries.iter()
    }

    /// Number of records currently held (≤ capacity).
    pub fn len(&self) -> usize {
        self.records.len()
    }

    /// Whether no records have been retained.
    pub fn is_empty(&self) -> bool {
        self.records.is_empty()
    }

    /// Records lost to ring overwrite.
    pub fn dropped(&self) -> u64 {
        self.dropped
    }

    /// Total events ever emitted (retained + dropped).
    pub fn emitted(&self) -> u64 {
        self.seq
    }

    /// The retained records, oldest first.
    pub fn records(&self) -> impl Iterator<Item = &TraceRecord> {
        let (tail, front) = self.records.split_at(self.head);
        front.iter().chain(tail.iter())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn snap() -> CounterSnapshot {
        CounterSnapshot::default()
    }

    #[test]
    fn records_come_back_in_order() {
        let mut s = TraceSink::new(16);
        for i in 0..5u64 {
            s.emit(i * 10, 0, TraceEvent::EcallEnter);
        }
        let seqs: Vec<u64> = s.records().map(|r| r.seq).collect();
        assert_eq!(seqs, vec![0, 1, 2, 3, 4]);
        assert_eq!(s.dropped(), 0);
        assert_eq!(s.emitted(), 5);
    }

    #[test]
    fn overflow_drops_oldest_and_counts() {
        let mut s = TraceSink::new(8);
        for i in 0..20u64 {
            s.emit(i, 0, TraceEvent::Ocall { switchless: false });
        }
        assert_eq!(s.len(), 8);
        assert_eq!(s.dropped(), 12);
        let seqs: Vec<u64> = s.records().map(|r| r.seq).collect();
        assert_eq!(seqs, (12..20).collect::<Vec<_>>(), "oldest evicted first");
    }

    #[test]
    fn capacity_is_clamped_to_one() {
        let mut s = TraceSink::new(0);
        s.emit(1, 0, TraceEvent::EcallEnter);
        s.emit(2, 0, TraceEvent::EcallExit);
        assert_eq!(s.len(), 1);
        assert_eq!(s.dropped(), 1);
    }

    #[test]
    fn phase_round_trip() {
        let mut s = TraceSink::new(16);
        s.begin_phase("build", 10, 0, snap());
        s.begin_phase("probe", 20, 0, snap());
        assert!(s.end_phase("probe", 30, 0, snap()).is_ok());
        assert!(s.end_phase("build", 40, 0, snap()).is_ok());
        assert_eq!(s.finish(), Ok(()));
        assert_eq!(s.len(), 4);
    }

    #[test]
    fn phase_misuse_is_a_typed_error_not_a_panic() {
        let mut s = TraceSink::new(16);
        assert_eq!(
            s.end_phase("ghost", 1, 0, snap()),
            Err(TraceError::NoOpenPhase {
                found: "ghost".into()
            })
        );
        s.begin_phase("outer", 2, 0, snap());
        s.begin_phase("inner", 3, 0, snap());
        assert_eq!(
            s.end_phase("outer", 4, 0, snap()),
            Err(TraceError::PhaseMismatch {
                expected: "inner".into(),
                found: "outer".into()
            })
        );
        assert_eq!(
            s.finish(),
            Err(TraceError::UnclosedPhase {
                phase: "inner".into()
            })
        );
        // The sink is still usable after every error.
        assert!(s.end_phase("inner", 5, 0, snap()).is_ok());
        assert!(s.end_phase("outer", 6, 0, snap()).is_ok());
        assert_eq!(s.finish(), Ok(()));
    }

    #[test]
    fn interning_reuses_ids() {
        let mut s = TraceSink::new(16);
        let a = s.begin_phase("round", 1, 0, snap());
        s.end_phase("round", 2, 0, snap()).unwrap();
        let b = s.begin_phase("round", 3, 0, snap());
        assert_eq!(a, b);
        assert_eq!(s.phase_name(a), "round");
    }

    #[test]
    fn sampling_schedule_rearms_without_bursts() {
        let mut s = TraceSink::with_config(64, 100);
        assert!(!s.sample_due(99));
        assert!(s.sample_due(100));
        s.emit(100, 0, TraceEvent::Sample { snap: snap() });
        assert!(!s.sample_due(199));
        // A long stall fires exactly one sample, then re-anchors.
        s.emit(1_234, 0, TraceEvent::Sample { snap: snap() });
        assert!(!s.sample_due(1_299));
        assert!(s.sample_due(1_300));
    }

    #[test]
    fn zero_interval_disables_sampling() {
        let s = TraceSink::with_config(64, 0);
        assert!(!s.sample_due(u64::MAX));
    }
}
