//! Typed relay network events.
//!
//! The vocabulary for what the *cross-enclave relay* did with each
//! message: queued it with what latency, delivered it, or dropped it
//! and why. Supervision-level decisions (suspicions, recoveries,
//! timeouts, quorum loss) use the campaign vocabulary in
//! [`crate::campaign`]; this module carries the per-message layer
//! underneath, so per-round transition and paging amplification can be
//! attributed to concrete deliveries.
//!
//! Like every artifact in the workspace the rendering is hand-rolled
//! JSONL with fixed key order, keyed on simulated cycles: two runs of
//! the same plan render byte-identical streams across `--jobs`.

use std::fmt::Write as _;

/// Why the relay dropped a message instead of queueing a delivery.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum NetDropReason {
    /// The fault plane's per-message drop draw fired.
    Faulted,
    /// A scheduled partition covered the link at send time.
    Partitioned,
    /// The sender was inside a kill window.
    SenderDead,
    /// The receiver was inside a kill window.
    ReceiverDead,
}

impl NetDropReason {
    /// Stable lower-case name used in rendered artifacts.
    pub fn name(self) -> &'static str {
        match self {
            NetDropReason::Faulted => "faulted",
            NetDropReason::Partitioned => "partitioned",
            NetDropReason::SenderDead => "sender_dead",
            NetDropReason::ReceiverDead => "receiver_dead",
        }
    }
}

/// One relay-level message event, in the order the relay processed it.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum NetEvent {
    /// A message was accepted and scheduled for delivery.
    Sent {
        /// Relay-wide message sequence number.
        seq: u64,
        /// Sending party.
        from: u32,
        /// Receiving party.
        to: u32,
        /// Protocol round the message belongs to.
        round: u32,
        /// Simulated cycle the delivery is scheduled at.
        deliver_at: u64,
        /// Whether the fault plane scheduled a duplicate delivery too.
        duplicated: bool,
    },
    /// A scheduled delivery reached its receiver.
    Delivered {
        /// Relay-wide message sequence number.
        seq: u64,
        /// Sending party.
        from: u32,
        /// Receiving party.
        to: u32,
        /// Protocol round the message belongs to.
        round: u32,
        /// Whether this was the fault plane's duplicate copy.
        duplicate: bool,
    },
    /// A message was dropped at send time.
    Dropped {
        /// Relay-wide message sequence number.
        seq: u64,
        /// Sending party.
        from: u32,
        /// Receiving party.
        to: u32,
        /// Protocol round the message belongs to.
        round: u32,
        /// Why it was dropped.
        reason: NetDropReason,
    },
}

impl NetEvent {
    /// Renders the event as one JSON object (no trailing newline), with
    /// fixed key order.
    pub fn json_line(&self, seq_no: u64, at_cycles: u64) -> String {
        let mut out = String::new();
        let _ = write!(out, "{{\"seq\":{seq_no},\"cycles\":{at_cycles},\"event\":");
        match self {
            NetEvent::Sent {
                seq,
                from,
                to,
                round,
                deliver_at,
                duplicated,
            } => {
                let _ = write!(
                    out,
                    "\"sent\",\"msg\":{seq},\"from\":{from},\"to\":{to},\"round\":{round},\
                     \"deliver_at\":{deliver_at},\"duplicated\":{duplicated}"
                );
            }
            NetEvent::Delivered {
                seq,
                from,
                to,
                round,
                duplicate,
            } => {
                let _ = write!(
                    out,
                    "\"delivered\",\"msg\":{seq},\"from\":{from},\"to\":{to},\"round\":{round},\
                     \"duplicate\":{duplicate}"
                );
            }
            NetEvent::Dropped {
                seq,
                from,
                to,
                round,
                reason,
            } => {
                let _ = write!(
                    out,
                    "\"dropped\",\"msg\":{seq},\"from\":{from},\"to\":{to},\"round\":{round},\
                     \"reason\":\"{}\"",
                    reason.name()
                );
            }
        }
        out.push('}');
        out
    }
}

/// An ordered relay message log: every [`NetEvent`] with the simulated
/// cycle at which the relay processed it.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct NetLog {
    events: Vec<(u64, NetEvent)>,
}

impl NetLog {
    /// An empty log.
    pub fn new() -> Self {
        NetLog::default()
    }

    /// Appends `event` stamped at `at_cycles`.
    pub fn push(&mut self, at_cycles: u64, event: NetEvent) {
        self.events.push((at_cycles, event));
    }

    /// The recorded events, oldest first.
    pub fn events(&self) -> impl Iterator<Item = &(u64, NetEvent)> {
        self.events.iter()
    }

    /// Number of recorded events.
    pub fn len(&self) -> usize {
        self.events.len()
    }

    /// Whether nothing was recorded.
    pub fn is_empty(&self) -> bool {
        self.events.is_empty()
    }

    /// Renders the log as JSONL: a header line, then one line per event
    /// in processing order. Byte-identical for identical message streams.
    pub fn render_jsonl(&self) -> String {
        let mut out = String::new();
        let _ = writeln!(
            out,
            "{{\"trace\":\"sgxgauge-relay\",\"records\":{}}}",
            self.events.len()
        );
        for (seq_no, (cycles, event)) in self.events.iter().enumerate() {
            out.push_str(&event.json_line(seq_no as u64, *cycles));
            out.push('\n');
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn lines_are_stable_and_self_describing() {
        let mut log = NetLog::new();
        log.push(
            1_000,
            NetEvent::Sent {
                seq: 0,
                from: 0,
                to: 1,
                round: 0,
                deliver_at: 5_700,
                duplicated: false,
            },
        );
        log.push(
            1_100,
            NetEvent::Dropped {
                seq: 1,
                from: 0,
                to: 2,
                round: 0,
                reason: NetDropReason::ReceiverDead,
            },
        );
        log.push(
            5_700,
            NetEvent::Delivered {
                seq: 0,
                from: 0,
                to: 1,
                round: 0,
                duplicate: false,
            },
        );
        let lines: Vec<String> = log.render_jsonl().lines().map(String::from).collect();
        assert_eq!(lines[0], "{\"trace\":\"sgxgauge-relay\",\"records\":3}");
        assert_eq!(
            lines[1],
            "{\"seq\":0,\"cycles\":1000,\"event\":\"sent\",\"msg\":0,\"from\":0,\"to\":1,\
             \"round\":0,\"deliver_at\":5700,\"duplicated\":false}"
        );
        assert_eq!(
            lines[2],
            "{\"seq\":1,\"cycles\":1100,\"event\":\"dropped\",\"msg\":1,\"from\":0,\"to\":2,\
             \"round\":0,\"reason\":\"receiver_dead\"}"
        );
        assert_eq!(
            lines[3],
            "{\"seq\":2,\"cycles\":5700,\"event\":\"delivered\",\"msg\":0,\"from\":0,\"to\":1,\
             \"round\":0,\"duplicate\":false}"
        );
    }

    #[test]
    fn rendering_is_deterministic() {
        let build = || {
            let mut log = NetLog::new();
            for i in 0..6u64 {
                log.push(
                    i * 10,
                    NetEvent::Delivered {
                        seq: i,
                        from: (i % 3) as u32,
                        to: ((i + 1) % 3) as u32,
                        round: 0,
                        duplicate: i % 2 == 1,
                    },
                );
            }
            log.render_jsonl()
        };
        assert_eq!(build(), build());
    }

    #[test]
    fn drop_reason_names_are_stable() {
        assert_eq!(NetDropReason::Faulted.name(), "faulted");
        assert_eq!(NetDropReason::Partitioned.name(), "partitioned");
        assert_eq!(NetDropReason::SenderDead.name(), "sender_dead");
        assert_eq!(NetDropReason::ReceiverDead.name(), "receiver_dead");
    }
}
