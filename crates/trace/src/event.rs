//! The structured event vocabulary of the trace plane.

/// Index of an interned phase name inside a [`crate::TraceSink`].
///
/// Phase names are interned so that [`TraceRecord`]s stay `Copy`; resolve
/// an id back to its name with [`crate::TraceSink::phase_name`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord)]
pub struct PhaseId(pub u32);

/// Which fault-plane injection fired (mirrors `faults::InjectedFault`
/// without depending on that crate).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum InjectedKind {
    /// An injected AEX storm burst.
    Aex,
    /// An EPC pressure window opened (frames reserved).
    EpcSpike,
    /// The active EPC pressure window was released.
    EpcRelease,
}

impl InjectedKind {
    /// Stable lowercase name used by the JSONL export.
    pub fn name(self) -> &'static str {
        match self {
            InjectedKind::Aex => "aex",
            InjectedKind::EpcSpike => "epc_spike",
            InjectedKind::EpcRelease => "epc_release",
        }
    }
}

/// A flat snapshot of every counter the timeline analyses read.
///
/// Assembled by the SGX layer (it alone sees the memory counters, the SGX
/// event counters and the EPC occupancy together); this crate only stores
/// and subtracts them. All fields are cumulative totals, so two snapshots
/// subtract into interval deltas exactly like `perf` readouts.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct CounterSnapshot {
    /// EPC frames currently resident (occupancy, not cumulative).
    pub resident_pages: u64,
    /// Enclave page faults taken (`sgx_do_fault` analogue).
    pub epc_faults: u64,
    /// EPC frames allocated (demand-zero EAUG/EADD analogue).
    pub epc_allocs: u64,
    /// Pages evicted in EWB batches.
    pub epc_evictions: u64,
    /// Pages loaded back with ELDU.
    pub epc_loadbacks: u64,
    /// ECALLs performed.
    pub ecalls: u64,
    /// OCALLs performed (classic and switchless).
    pub ocalls: u64,
    /// Asynchronous enclave exits.
    pub aex_exits: u64,
    /// Data-TLB misses that required a page walk.
    pub dtlb_misses: u64,
    /// Last-level-cache misses.
    pub llc_misses: u64,
    /// OS minor page faults.
    pub page_faults: u64,
    /// Cycles of pure application computation.
    pub compute_cycles: u64,
    /// Memory-hierarchy stall cycles beyond an L1 hit.
    pub stall_cycles: u64,
    /// Hardware page-walk cycles (including EPCM checks).
    pub walk_cycles: u64,
    /// Extra stall cycles attributable to the Memory Encryption Engine
    /// (the encrypted-DRAM premium over plain DRAM; a subset of
    /// `stall_cycles`).
    pub mee_cycles: u64,
    /// Cycles spent in ECALL/OCALL/AEX transitions.
    pub transition_cycles: u64,
    /// Cycles spent handling EPC faults (paging: EWB/ELDU/alloc).
    pub fault_cycles: u64,
}

impl CounterSnapshot {
    /// Per-field saturating delta `self - earlier` (occupancy fields are
    /// carried from `self`, not subtracted).
    pub fn delta(&self, earlier: &CounterSnapshot) -> CounterSnapshot {
        CounterSnapshot {
            resident_pages: self.resident_pages,
            epc_faults: self.epc_faults.saturating_sub(earlier.epc_faults),
            epc_allocs: self.epc_allocs.saturating_sub(earlier.epc_allocs),
            epc_evictions: self.epc_evictions.saturating_sub(earlier.epc_evictions),
            epc_loadbacks: self.epc_loadbacks.saturating_sub(earlier.epc_loadbacks),
            ecalls: self.ecalls.saturating_sub(earlier.ecalls),
            ocalls: self.ocalls.saturating_sub(earlier.ocalls),
            aex_exits: self.aex_exits.saturating_sub(earlier.aex_exits),
            dtlb_misses: self.dtlb_misses.saturating_sub(earlier.dtlb_misses),
            llc_misses: self.llc_misses.saturating_sub(earlier.llc_misses),
            page_faults: self.page_faults.saturating_sub(earlier.page_faults),
            compute_cycles: self.compute_cycles.saturating_sub(earlier.compute_cycles),
            stall_cycles: self.stall_cycles.saturating_sub(earlier.stall_cycles),
            walk_cycles: self.walk_cycles.saturating_sub(earlier.walk_cycles),
            mee_cycles: self.mee_cycles.saturating_sub(earlier.mee_cycles),
            transition_cycles: self
                .transition_cycles
                .saturating_sub(earlier.transition_cycles),
            fault_cycles: self.fault_cycles.saturating_sub(earlier.fault_cycles),
        }
    }

    /// `(name, value)` pairs in declaration order, for generic emission.
    pub fn fields(&self) -> [(&'static str, u64); 17] {
        [
            ("resident_pages", self.resident_pages),
            ("epc_faults", self.epc_faults),
            ("epc_allocs", self.epc_allocs),
            ("epc_evictions", self.epc_evictions),
            ("epc_loadbacks", self.epc_loadbacks),
            ("ecalls", self.ecalls),
            ("ocalls", self.ocalls),
            ("aex_exits", self.aex_exits),
            ("dtlb_misses", self.dtlb_misses),
            ("llc_misses", self.llc_misses),
            ("page_faults", self.page_faults),
            ("compute_cycles", self.compute_cycles),
            ("stall_cycles", self.stall_cycles),
            ("walk_cycles", self.walk_cycles),
            ("mee_cycles", self.mee_cycles),
            ("transition_cycles", self.transition_cycles),
            ("fault_cycles", self.fault_cycles),
        ]
    }
}

/// One structured simulator event.
///
/// Everything here is `Copy`: phase names are interned ([`PhaseId`]) and
/// counter state travels as a flat [`CounterSnapshot`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum TraceEvent {
    /// A thread entered an enclave through an ECALL.
    EcallEnter,
    /// A thread returned from an enclave (EEXIT).
    EcallExit,
    /// An OCALL round trip.
    Ocall {
        /// Served by a switchless proxy worker (no EEXIT/EENTER)?
        switchless: bool,
    },
    /// An asynchronous enclave exit + ERESUME round trip.
    Aex {
        /// Injected by the fault plane rather than organic?
        injected: bool,
    },
    /// An EPC *paging* fault: the faulting access triggered an EWB batch
    /// and/or an ELDU load-back. Demand-zero allocations below the EPC
    /// watermark are not paging activity and are not recorded (they show
    /// up in sampled `epc_allocs` instead) — this is what makes the
    /// paper's boundary cliff visible as "fault events appear only once
    /// residency crosses the watermark".
    EpcFault {
        /// The page came back via ELDU (previously evicted) rather than
        /// being freshly allocated.
        loadback: bool,
        /// Pages written back in the EWB batch serving this fault.
        evicted: u32,
        /// EPC frames resident at the instant the fault was taken.
        resident_pages: u64,
    },
    /// A LibOS shim syscall dispatch.
    ShimSyscall {
        /// The syscall left the enclave (OCALL path) rather than being
        /// served entirely in-enclave.
        host: bool,
    },
    /// The fault plane applied an injection.
    FaultInjected {
        /// Which injection fired.
        kind: InjectedKind,
    },
    /// A workload-declared phase span opened.
    PhaseBegin {
        /// Interned phase name.
        id: PhaseId,
        /// Counter state at the boundary.
        snap: CounterSnapshot,
    },
    /// A workload-declared phase span closed.
    PhaseEnd {
        /// Interned phase name.
        id: PhaseId,
        /// Counter state at the boundary.
        snap: CounterSnapshot,
    },
    /// A periodic counter sample (fixed simulated-cycle intervals).
    Sample {
        /// Counter state at the sample instant.
        snap: CounterSnapshot,
    },
}

/// One entry of the ring buffer: an event stamped with the emitting
/// thread's simulated clock and a global sequence number.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct TraceRecord {
    /// Position in emission order (monotonic, survives ring overwrite so
    /// drops are visible as gaps).
    pub seq: u64,
    /// Simulated cycle clock of the emitting thread.
    pub cycles: u64,
    /// Index of the emitting simulated thread.
    pub thread: u32,
    /// The event.
    pub event: TraceEvent,
}
