//! Simulation-time tracing plane for the SGXGauge simulator.
//!
//! The paper's headline results are *time-resolved*: Appendix A
//! instruments the SGX driver to sample `sgx_ewb`/`sgx_eldu`/
//! `sgx_do_fault`, and the EPC-boundary cliff only shows up when counters
//! are read per phase rather than end-to-end. This crate is the
//! observability layer that makes those readouts possible on the
//! simulated substrate:
//!
//! * [`TraceEvent`] — the structured event vocabulary (enclave
//!   transitions, EPC paging batches, LibOS shim syscalls, fault-plane
//!   injections, workload-declared phases, periodic counter samples),
//! * [`TraceSink`] — a bounded ring buffer of [`TraceRecord`]s keyed on
//!   the *simulated* thread clock, with drop accounting and deterministic
//!   ordering (events are appended in program order of the owning cell,
//!   so traces are identical run-to-run and independent of `--jobs`),
//! * [`timeline`]/[`phase_attribution`](TraceSink::phase_attribution) —
//!   analysis passes turning a record stream into a Fig-7-style counter
//!   timeline and a per-phase cycle-attribution breakdown.
//!
//! # Zero cost when disabled
//!
//! The sink is *hosted* by `mem_sim::Machine` as an `Option`; every
//! emission point in the simulator compiles down to one `Option`
//! pointer check when tracing is off, and the per-line memory hot path
//! emits nothing at all. The `trace_overhead` bench pins this contract:
//! the simulated cycle counts of a traced and an untraced run are
//! required to be *identical* (tracing never charges cycles), and the
//! disabled-sink run must stay within 2% of the pre-trace-plane golden
//! cycle count.
//!
//! This crate is dependency-free and knows nothing about the simulator
//! crates; they feed it [`CounterSnapshot`]s they assemble themselves.

#![forbid(unsafe_code)]
#![deny(missing_docs)]

pub mod campaign;
mod event;
mod json;
pub mod relay;
mod sink;
mod timeline;

pub use campaign::{BreakerState, CampaignEvent, CampaignLog, ShedReason};
pub use event::{CounterSnapshot, InjectedKind, PhaseId, TraceEvent, TraceRecord};
pub use relay::{NetDropReason, NetEvent, NetLog};
pub use sink::{TraceError, TraceSink, DEFAULT_CAPACITY, DEFAULT_SAMPLE_INTERVAL};
pub use timeline::{timeline, PhaseAttribution, TimelinePoint};
