//! Typed campaign supervision events.
//!
//! The cell-level trace plane records what the *simulated machine* did;
//! this module is the vocabulary for what the *campaign supervisor*
//! decided: breaker transitions, shed cells, drained budgets, SLO
//! overruns. Every degraded-mode decision a campaign makes must be
//! visible as one of these events — they are the audit trail that lets
//! an operator reconstruct why a cell was never executed.
//!
//! Like every artifact in the workspace the rendering is hand-rolled
//! JSONL with fixed key order: two campaign runs that made the same
//! decisions render byte-identical streams, which is what lets the soak
//! harness `cmp` supervision traces across kill/resume cycles.
//!
//! Events are stamped with the campaign's *simulated* spend clock (the
//! cycles accounted to executed cells, retries and backoff at decision
//! time), never wall-clock time.

use crate::json::escape;
use std::fmt::Write as _;

/// Circuit-breaker state for one workload.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum BreakerState {
    /// Cells flow normally; consecutive transient failures are counted.
    Closed,
    /// The workload is shedding: its cells are marked degraded without
    /// being executed until the cooldown has passed.
    Open,
    /// Cooldown over: the next cell runs as a probe. Success closes the
    /// breaker, failure re-opens it.
    HalfOpen,
}

impl BreakerState {
    /// Stable lower-case name used in rendered artifacts.
    pub fn name(self) -> &'static str {
        match self {
            BreakerState::Closed => "closed",
            BreakerState::Open => "open",
            BreakerState::HalfOpen => "half_open",
        }
    }
}

/// Why the campaign shed a cell (or a whole stage) instead of running it.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ShedReason {
    /// The workload's circuit breaker was open.
    BreakerOpen,
    /// The campaign-wide retry budget was drained; degraded mode drops
    /// repetitions beyond the first.
    RetryBudgetDrained,
    /// The stage blew its simulated-cycle deadline.
    SloExceeded,
    /// The stage is marked as an antagonist and the campaign was already
    /// degraded when it was reached.
    AntagonistSkipped,
}

impl ShedReason {
    /// Stable lower-case name used in rendered artifacts.
    pub fn name(self) -> &'static str {
        match self {
            ShedReason::BreakerOpen => "breaker_open",
            ShedReason::RetryBudgetDrained => "retry_budget_drained",
            ShedReason::SloExceeded => "slo_exceeded",
            ShedReason::AntagonistSkipped => "antagonist_skipped",
        }
    }
}

/// One supervision decision, in the order the campaign made it.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum CampaignEvent {
    /// A stage started executing.
    StageBegin {
        /// Stage name from the campaign config.
        stage: String,
        /// Grid cells the stage enumerates.
        cells: usize,
        /// Per-stage fault-plan seed after campaign salting (0 = none).
        fault_seed: u64,
    },
    /// A stage finished (all cells executed, shed, or adopted).
    StageEnd {
        /// Stage name.
        stage: String,
        /// Cells that executed to an outcome.
        executed: usize,
        /// Cells shed by supervision.
        shed: usize,
        /// Simulated cycles the stage spent (runtime + backoff).
        spent_cycles: u64,
    },
    /// A whole stage was skipped without enumerating its cells.
    StageSkipped {
        /// Stage name.
        stage: String,
        /// Why.
        reason: ShedReason,
    },
    /// A workload's breaker changed state.
    BreakerTransition {
        /// Workload name.
        workload: String,
        /// Previous state.
        from: BreakerState,
        /// New state.
        to: BreakerState,
        /// Consecutive transient failures observed at transition time.
        consecutive_failures: usize,
    },
    /// A cell was shed: marked degraded without being executed.
    CellShed {
        /// The cell key display form (`workload/mode/setting/rep`).
        cell: String,
        /// Workload name.
        workload: String,
        /// Why.
        reason: ShedReason,
    },
    /// A half-open breaker sent a probe cell through.
    ProbeResult {
        /// The probe cell key.
        cell: String,
        /// Workload name.
        workload: String,
        /// Whether the probe succeeded (closing the breaker).
        ok: bool,
    },
    /// The campaign-wide retry budget crossed into the drained state.
    RetryBudgetDrained {
        /// Backoff cycles accounted when the budget drained.
        spent_cycles: u64,
        /// The configured budget.
        budget_cycles: u64,
    },
    /// The relay failure detector declared a party suspect: nothing was
    /// heard from it for the suspicion window.
    PartySuspected {
        /// The silent party's id.
        party: u32,
        /// Simulated cycles since the party was last heard.
        silent_cycles: u64,
    },
    /// A previously suspected party was heard again.
    PartyRecovered {
        /// The recovered party's id.
        party: u32,
    },
    /// A threshold-signing round blew its cycle budget before reaching
    /// quorum completion.
    RoundTimeout {
        /// The round ordinal (0-based).
        round: u32,
        /// Parties that had completed the round at timeout.
        signers: u32,
        /// The quorum threshold the round needed.
        threshold: u32,
    },
    /// Live parties fell below the signing threshold — the protocol
    /// aborts with a typed error rather than degrading further.
    QuorumLost {
        /// The round ordinal (0-based) during which quorum was lost.
        round: u32,
        /// Parties still considered live.
        live: u32,
        /// The quorum threshold.
        threshold: u32,
    },
}

impl CampaignEvent {
    /// Renders the event as one JSON object (no trailing newline), with
    /// fixed key order.
    pub fn json_line(&self, seq: u64, at_cycles: u64) -> String {
        let mut out = String::new();
        let _ = write!(
            out,
            "{{\"seq\":{seq},\"spent_cycles\":{at_cycles},\"event\":"
        );
        match self {
            CampaignEvent::StageBegin {
                stage,
                cells,
                fault_seed,
            } => {
                let _ = write!(
                    out,
                    "\"stage_begin\",\"stage\":\"{}\",\"cells\":{cells},\"fault_seed\":{fault_seed}",
                    escape(stage)
                );
            }
            CampaignEvent::StageEnd {
                stage,
                executed,
                shed,
                spent_cycles,
            } => {
                let _ = write!(
                    out,
                    "\"stage_end\",\"stage\":\"{}\",\"executed\":{executed},\"shed\":{shed},\
                     \"stage_cycles\":{spent_cycles}",
                    escape(stage)
                );
            }
            CampaignEvent::StageSkipped { stage, reason } => {
                let _ = write!(
                    out,
                    "\"stage_skipped\",\"stage\":\"{}\",\"reason\":\"{}\"",
                    escape(stage),
                    reason.name()
                );
            }
            CampaignEvent::BreakerTransition {
                workload,
                from,
                to,
                consecutive_failures,
            } => {
                let _ = write!(
                    out,
                    "\"breaker\",\"workload\":\"{}\",\"from\":\"{}\",\"to\":\"{}\",\
                     \"consecutive_failures\":{consecutive_failures}",
                    escape(workload),
                    from.name(),
                    to.name()
                );
            }
            CampaignEvent::CellShed {
                cell,
                workload,
                reason,
            } => {
                let _ = write!(
                    out,
                    "\"cell_shed\",\"cell\":\"{}\",\"workload\":\"{}\",\"reason\":\"{}\"",
                    escape(cell),
                    escape(workload),
                    reason.name()
                );
            }
            CampaignEvent::ProbeResult { cell, workload, ok } => {
                let _ = write!(
                    out,
                    "\"probe\",\"cell\":\"{}\",\"workload\":\"{}\",\"ok\":{ok}",
                    escape(cell),
                    escape(workload)
                );
            }
            CampaignEvent::RetryBudgetDrained {
                spent_cycles,
                budget_cycles,
            } => {
                let _ = write!(
                    out,
                    "\"retry_budget_drained\",\"backoff_cycles\":{spent_cycles},\
                     \"budget_cycles\":{budget_cycles}"
                );
            }
            CampaignEvent::PartySuspected {
                party,
                silent_cycles,
            } => {
                let _ = write!(
                    out,
                    "\"party_suspected\",\"party\":{party},\"silent_cycles\":{silent_cycles}"
                );
            }
            CampaignEvent::PartyRecovered { party } => {
                let _ = write!(out, "\"party_recovered\",\"party\":{party}");
            }
            CampaignEvent::RoundTimeout {
                round,
                signers,
                threshold,
            } => {
                let _ = write!(
                    out,
                    "\"round_timeout\",\"round\":{round},\"signers\":{signers},\
                     \"threshold\":{threshold}"
                );
            }
            CampaignEvent::QuorumLost {
                round,
                live,
                threshold,
            } => {
                let _ = write!(
                    out,
                    "\"quorum_lost\",\"round\":{round},\"live\":{live},\
                     \"threshold\":{threshold}"
                );
            }
        }
        out.push('}');
        out
    }
}

/// An ordered campaign supervision log: every event with the simulated
/// spend clock at which the supervisor made the decision.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct CampaignLog {
    events: Vec<(u64, CampaignEvent)>,
}

impl CampaignLog {
    /// An empty log.
    pub fn new() -> Self {
        CampaignLog::default()
    }

    /// Appends `event` stamped with the current spend clock.
    pub fn push(&mut self, at_cycles: u64, event: CampaignEvent) {
        self.events.push((at_cycles, event));
    }

    /// The recorded events, oldest first.
    pub fn events(&self) -> impl Iterator<Item = &(u64, CampaignEvent)> {
        self.events.iter()
    }

    /// Number of recorded events.
    pub fn len(&self) -> usize {
        self.events.len()
    }

    /// Whether nothing was recorded.
    pub fn is_empty(&self) -> bool {
        self.events.is_empty()
    }

    /// Renders the log as JSONL: a header line, then one line per event
    /// in decision order. Byte-identical for identical decision streams.
    pub fn render_jsonl(&self) -> String {
        let mut out = String::new();
        let _ = writeln!(
            out,
            "{{\"trace\":\"sgxgauge-campaign\",\"records\":{}}}",
            self.events.len()
        );
        for (seq, (cycles, event)) in self.events.iter().enumerate() {
            out.push_str(&event.json_line(seq as u64, *cycles));
            out.push('\n');
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn lines_are_stable_and_self_describing() {
        let mut log = CampaignLog::new();
        log.push(
            0,
            CampaignEvent::StageBegin {
                stage: "baseline".into(),
                cells: 12,
                fault_seed: 7,
            },
        );
        log.push(
            5_000,
            CampaignEvent::BreakerTransition {
                workload: "BTree".into(),
                from: BreakerState::Closed,
                to: BreakerState::Open,
                consecutive_failures: 3,
            },
        );
        log.push(
            5_000,
            CampaignEvent::CellShed {
                cell: "2/Vanilla/Low/1".into(),
                workload: "BTree".into(),
                reason: ShedReason::BreakerOpen,
            },
        );
        let text = log.render_jsonl();
        let lines: Vec<&str> = text.lines().collect();
        assert_eq!(lines.len(), 4, "header + 3 events");
        assert_eq!(lines[0], "{\"trace\":\"sgxgauge-campaign\",\"records\":3}");
        assert!(lines[1].contains("\"stage_begin\""));
        assert!(lines[2].contains("\"from\":\"closed\""));
        assert!(lines[2].contains("\"to\":\"open\""));
        assert!(lines[3].contains("\"reason\":\"breaker_open\""));
    }

    #[test]
    fn rendering_is_deterministic() {
        let build = || {
            let mut log = CampaignLog::new();
            for i in 0..5u64 {
                log.push(
                    i * 100,
                    CampaignEvent::ProbeResult {
                        cell: format!("0/Vanilla/Low/{i}"),
                        workload: "Blockchain".into(),
                        ok: i % 2 == 0,
                    },
                );
            }
            log.render_jsonl()
        };
        assert_eq!(build(), build());
    }

    #[test]
    fn relay_supervision_lines_use_fixed_keys() {
        let mut log = CampaignLog::new();
        log.push(
            260_000,
            CampaignEvent::PartySuspected {
                party: 2,
                silent_cycles: 260_000,
            },
        );
        log.push(700_000, CampaignEvent::PartyRecovered { party: 2 });
        log.push(
            900_000,
            CampaignEvent::RoundTimeout {
                round: 4,
                signers: 2,
                threshold: 3,
            },
        );
        log.push(
            950_000,
            CampaignEvent::QuorumLost {
                round: 5,
                live: 2,
                threshold: 3,
            },
        );
        let lines: Vec<String> = log.render_jsonl().lines().map(String::from).collect();
        assert_eq!(
            lines[1],
            "{\"seq\":0,\"spent_cycles\":260000,\"event\":\"party_suspected\",\
             \"party\":2,\"silent_cycles\":260000}"
        );
        assert_eq!(
            lines[2],
            "{\"seq\":1,\"spent_cycles\":700000,\"event\":\"party_recovered\",\"party\":2}"
        );
        assert_eq!(
            lines[3],
            "{\"seq\":2,\"spent_cycles\":900000,\"event\":\"round_timeout\",\
             \"round\":4,\"signers\":2,\"threshold\":3}"
        );
        assert_eq!(
            lines[4],
            "{\"seq\":3,\"spent_cycles\":950000,\"event\":\"quorum_lost\",\
             \"round\":5,\"live\":2,\"threshold\":3}"
        );
    }

    #[test]
    fn names_are_stable() {
        assert_eq!(BreakerState::HalfOpen.name(), "half_open");
        assert_eq!(ShedReason::SloExceeded.name(), "slo_exceeded");
        assert_eq!(ShedReason::AntagonistSkipped.name(), "antagonist_skipped");
    }
}
