//! Ablation: TLB reach (the SGXL hypothesis).
//!
//! The paper's counters put dTLB misses and page-walk cycles at the top
//! of every ranking (Table 5), and cites SGXL — large pages for enclaves
//! — as the natural fix. 2 MB pages multiply each TLB entry's reach by
//! 512; we approximate that by scaling the TLB entry counts while
//! keeping 4 KB EPC management, and measure how much of the Native-mode
//! overhead a bigger reach recovers for the worst TLB offender.

use mem_sim::MachineConfig;
use sgx_sim::SgxConfig;
use sgxgauge_bench::{banner, emit, fx, scale};
use sgxgauge_core::{EnvConfig, ExecMode, InputSetting, Runner, RunnerConfig};
use sgxgauge_workloads::HashJoin;

fn run(reach: usize) -> (u64, u64, u64) {
    let mut mem = MachineConfig::default();
    mem.l1_tlb_entries *= reach;
    mem.stlb_entries *= reach;
    let mut env = EnvConfig::paper(ExecMode::Vanilla, 0);
    env.sgx = SgxConfig {
        mem,
        ..SgxConfig::default()
    };
    if scale() > 1 {
        env.sgx.epc_bytes = (env.sgx.epc_bytes / scale()).max(1 << 20);
    }
    let runner = Runner::new(RunnerConfig {
        env,
        repetitions: 1,
    });
    let wl = HashJoin::scaled(scale());
    let r = runner
        .run_once(&wl, ExecMode::Native, InputSetting::High)
        .expect("run");
    (
        r.runtime_cycles,
        r.counters.dtlb_misses,
        r.counters.walk_cycles,
    )
}

fn main() {
    banner(
        "Ablation — TLB reach (huge-page approximation, SGXL)",
        "larger reach cuts walk cycles, recovering part of the SGX paging overhead",
    );
    let (base_rt, _, _) = run(1);
    let mut table = sgxgauge_core::report::ReportTable::new(
        "HashJoin (High, Native) under growing TLB reach",
        &[
            "tlb_reach",
            "runtime_cycles",
            "vs_1x",
            "dtlb_misses",
            "walk_cycles",
        ],
    );
    for (label, reach) in [
        ("4 KB pages (1x)", 1usize),
        ("8x reach", 8),
        ("64x reach", 64),
        ("512x (2 MB pages)", 512),
    ] {
        let (rt, dtlb, walk) = run(reach);
        table.push_row(vec![
            label.to_string(),
            rt.to_string(),
            fx(rt as f64 / base_rt as f64),
            dtlb.to_string(),
            walk.to_string(),
        ]);
    }
    emit("ablation_hugepages", &table);
    println!("Shape check: dTLB misses and walk cycles fall monotonically with reach;");
    println!("runtime improves but does not reach Vanilla — EPC faults remain (SGXL's point).");
}
