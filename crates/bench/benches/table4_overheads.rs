//! Table 4: overhead in system-related events, geomean across workloads.
//!
//! Paper rows (Table 4): Native-vs-Vanilla over the 6 ported workloads,
//! LibOS-vs-Vanilla over all 10, LibOS-vs-Native over the 6, each at
//! Low/Medium/High — runtime overhead plus dTLB misses, walk cycles,
//! stall cycles, LLC misses and absolute EPC evictions.

use sgxgauge_bench::{banner, emit, expect_report, fk, fx, run_grid, scale};
use sgxgauge_core::report::{RatioRow, ReportTable};
use sgxgauge_core::sweep::SweepReport;
use sgxgauge_core::{ExecMode, InputSetting};
use sgxgauge_workloads::{suite, suite_scaled};

/// One geomean row per setting: ratio of `num` over `den` mode across
/// the grid cells of `indices` (workload positions in the sweep).
fn section(
    title: &str,
    table: &mut ReportTable,
    sweep: &SweepReport,
    indices: &[usize],
    num: ExecMode,
    den: ExecMode,
) {
    for setting in InputSetting::ALL {
        let rows: Vec<RatioRow> = indices
            .iter()
            .map(|&wi| {
                RatioRow::from_reports(
                    expect_report(sweep, wi, num, setting),
                    expect_report(sweep, wi, den, setting),
                )
            })
            .collect();
        let g = RatioRow::geomean_of(&rows);
        table.push_row(vec![
            title.to_string(),
            setting.to_string(),
            fx(g.overhead),
            fx(g.dtlb_misses),
            fx(g.walk_cycles),
            fx(g.stall_cycles),
            fx(g.llc_misses),
            fk(g.epc_evictions),
        ]);
    }
}

fn main() {
    banner(
        "Table 4 — overhead in system-related events",
        "Native/Vanilla: 2.0x/3.0x/3.4x; LibOS/Vanilla: 2.03x/3.13x/3.7x; LibOS/Native: ~1.0x",
    );
    let all = if scale() == 1 {
        suite()
    } else {
        suite_scaled(scale())
    };
    let native_capable: Vec<usize> = all
        .iter()
        .enumerate()
        .filter(|(_, w)| w.supports(ExecMode::Native))
        .map(|(i, _)| i)
        .collect();
    let everyone: Vec<usize> = (0..all.len()).collect();

    // One sweep covers every (num, den) pair below: the grid skips modes
    // a workload doesn't support, and the sections only index cells that
    // exist.
    let sweep = run_grid(&all, &ExecMode::ALL, &InputSetting::ALL);

    let mut table = ReportTable::new(
        "Table 4 (geomean across workloads)",
        &[
            "comparison",
            "setting",
            "overhead",
            "dtlb_misses",
            "walk_cycles",
            "stall_cycles",
            "llc_misses",
            "epc_evictions",
        ],
    );

    section(
        "Native w.r.t Vanilla (6 workloads)",
        &mut table,
        &sweep,
        &native_capable,
        ExecMode::Native,
        ExecMode::Vanilla,
    );
    section(
        "LibOS w.r.t Vanilla (10 workloads)",
        &mut table,
        &sweep,
        &everyone,
        ExecMode::LibOs,
        ExecMode::Vanilla,
    );
    section(
        "LibOS w.r.t Native (6 workloads)",
        &mut table,
        &sweep,
        &native_capable,
        ExecMode::LibOs,
        ExecMode::Native,
    );

    emit("table4_overheads", &table);
    println!("Shape checks: overhead must rise Low->Medium->High within the first two sections;");
    println!("the LibOS-vs-Native overhead should sit near 1.0x and *decrease* as inputs grow (paper: 1.03x, 1.03x, 0.9x).");
}
