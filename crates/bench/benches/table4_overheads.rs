//! Table 4: overhead in system-related events, geomean across workloads.
//!
//! Paper rows (Table 4): Native-vs-Vanilla over the 6 ported workloads,
//! LibOS-vs-Vanilla over all 10, LibOS-vs-Native over the 6, each at
//! Low/Medium/High — runtime overhead plus dTLB misses, walk cycles,
//! stall cycles, LLC misses and absolute EPC evictions.

use sgxgauge_bench::{banner, emit, fk, fx, paper_runner, scale};
use sgxgauge_core::report::{RatioRow, ReportTable};
use sgxgauge_core::{ExecMode, InputSetting, RunReport, Workload};
use sgxgauge_workloads::{suite, suite_scaled};

/// Produces the (numerator, denominator) run pair for one cell.
type RunPair<'a> = &'a dyn Fn(&dyn Workload, InputSetting) -> Option<(RunReport, RunReport)>;

fn section(title: &str, table: &mut ReportTable, workloads: &[&dyn Workload], runs: RunPair<'_>) {
    for setting in InputSetting::ALL {
        let mut rows = Vec::new();
        for wl in workloads {
            if let Some((num, den)) = runs(*wl, setting) {
                rows.push(RatioRow::from_reports(&num, &den));
            }
        }
        let g = RatioRow::geomean_of(&rows);
        table.push_row(vec![
            title.to_string(),
            setting.to_string(),
            fx(g.overhead),
            fx(g.dtlb_misses),
            fx(g.walk_cycles),
            fx(g.stall_cycles),
            fx(g.llc_misses),
            fk(g.epc_evictions),
        ]);
    }
}

fn main() {
    banner(
        "Table 4 — overhead in system-related events",
        "Native/Vanilla: 2.0x/3.0x/3.4x; LibOS/Vanilla: 2.03x/3.13x/3.7x; LibOS/Native: ~1.0x",
    );
    let runner = paper_runner();
    let all = if scale() == 1 { suite() } else { suite_scaled(scale()) };
    let native_capable: Vec<&dyn Workload> =
        all.iter().filter(|w| w.supports(ExecMode::Native)).map(|w| w.as_ref()).collect();
    let everyone: Vec<&dyn Workload> = all.iter().map(|w| w.as_ref()).collect();

    let mut table = ReportTable::new(
        "Table 4 (geomean across workloads)",
        &["comparison", "setting", "overhead", "dtlb_misses", "walk_cycles", "stall_cycles", "llc_misses", "epc_evictions"],
    );

    section(
        "Native w.r.t Vanilla (6 workloads)",
        &mut table,
        &native_capable,
        &|wl, s| {
            let n = runner.run_once(wl, ExecMode::Native, s).ok()?;
            let v = runner.run_once(wl, ExecMode::Vanilla, s).ok()?;
            Some((n, v))
        },
    );
    section(
        "LibOS w.r.t Vanilla (10 workloads)",
        &mut table,
        &everyone,
        &|wl, s| {
            let l = runner.run_once(wl, ExecMode::LibOs, s).ok()?;
            let v = runner.run_once(wl, ExecMode::Vanilla, s).ok()?;
            Some((l, v))
        },
    );
    section(
        "LibOS w.r.t Native (6 workloads)",
        &mut table,
        &native_capable,
        &|wl, s| {
            let l = runner.run_once(wl, ExecMode::LibOs, s).ok()?;
            let n = runner.run_once(wl, ExecMode::Native, s).ok()?;
            Some((l, n))
        },
    );

    emit("table4_overheads", &table);
    println!("Shape checks: overhead must rise Low->Medium->High within the first two sections;");
    println!("the LibOS-vs-Native overhead should sit near 1.0x and *decrease* as inputs grow (paper: 1.03x, 1.03x, 0.9x).");
}
