//! Figures 6b and 6c: LibOS-mode overhead and EPC page reloads.
//!
//! Paper (§5.4): overhead grows up to 8.7x from Low to Medium and up to
//! 2.7x from Medium to High; EPC load-backs grow up to 341x (Low→Medium)
//! and 4.1x (Medium→High). Start-up is excluded (Appendix D).

use sgxgauge_bench::{banner, emit, expect_report, fk, fx, run_grid, scale};
use sgxgauge_core::report::ReportTable;
use sgxgauge_core::{ExecMode, InputSetting};
use sgxgauge_workloads::{suite, suite_scaled};

fn main() {
    banner(
        "Figures 6b/6c — LibOS mode overhead and EPC reloads",
        "Low->Medium: up to 8.7x overhead, up to 341x loadbacks; Medium->High flatter",
    );
    let all = if scale() == 1 {
        suite()
    } else {
        suite_scaled(scale())
    };
    let sweep = run_grid(
        &all,
        &[ExecMode::Vanilla, ExecMode::LibOs],
        &InputSetting::ALL,
    );

    let mut table = ReportTable::new(
        "Fig 6b+6c: LibOS vs Vanilla overhead and EPC load-backs",
        &[
            "workload",
            "setting",
            "overhead_vs_vanilla",
            "epc_loadbacks",
            "epc_evictions",
        ],
    );
    let mut max_lm: f64 = 0.0;
    let mut max_mh: f64 = 0.0;
    for (wi, wl) in all.iter().enumerate() {
        let mut loads = Vec::new();
        for setting in InputSetting::ALL {
            let v = expect_report(&sweep, wi, ExecMode::Vanilla, setting);
            let l = expect_report(&sweep, wi, ExecMode::LibOs, setting);
            let overhead = l.runtime_cycles as f64 / v.runtime_cycles as f64;
            table.push_row(vec![
                wl.name().to_string(),
                setting.to_string(),
                fx(overhead),
                fk(l.sgx.epc_loadbacks),
                fk(l.sgx.epc_evictions),
            ]);
            loads.push(l.sgx.epc_loadbacks.max(1) as f64);
        }
        max_lm = max_lm.max(loads[1] / loads[0]);
        max_mh = max_mh.max(loads[2] / loads[1]);
    }
    emit("fig06bc_libos_mode", &table);
    println!("Shape check: max Low->Medium load-back growth = {max_lm:.0}x (paper: up to 341x);");
    println!("max Medium->High growth = {max_mh:.1}x (paper: up to 4.1x).");
}
