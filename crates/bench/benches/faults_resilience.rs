//! Criterion micro-benchmarks of the fault-injection plane.
//!
//! The fault hook is polled from every instrumented `Env` operation, so
//! its quiescent cost is paid millions of times per sweep; these benches
//! pin that cost (and the end-to-end overhead of running a workload
//! under an active plan) so regressions in the resilience layer are
//! caught the same way simulator hot-path regressions are.

use criterion::{criterion_group, criterion_main, Criterion};
use faults::FaultPlan;
use sgxgauge_core::{EnvConfig, ExecMode, InputSetting, Runner, RunnerConfig};
use sgxgauge_workloads::HashJoin;
use std::hint::black_box;

fn bench_hook_poll(c: &mut Criterion) {
    // A sparse storm: almost every poll takes the fast "not due" path.
    let plan = FaultPlan::parse("seed=1,aex=2@1000000").expect("plan");
    let mut hook = plan.compile(0);
    let mut now = 0u64;
    c.bench_function("fault_hook_poll_quiescent", |b| {
        b.iter(|| {
            now += 50;
            black_box(hook.poll(black_box(now)));
        })
    });
}

fn quick_runner() -> RunnerConfig {
    RunnerConfig {
        env: EnvConfig::quick_test(ExecMode::Vanilla),
        repetitions: 1,
    }
}

fn bench_clean_vs_faulted_run(c: &mut Criterion) {
    let wl = HashJoin::scaled(1024);
    let clean = Runner::new(quick_runner());
    c.bench_function("run_native_clean", |b| {
        b.iter(|| {
            black_box(
                clean
                    .run_once(&wl, ExecMode::Native, InputSetting::Low)
                    .expect("clean run"),
            )
        })
    });
    let faulted = Runner::new(quick_runner())
        .faults(FaultPlan::parse("seed=7,aex=2@20000,epc=8@90000:30000").expect("plan"));
    c.bench_function("run_native_faulted", |b| {
        b.iter(|| {
            black_box(
                faulted
                    .run_salted(&wl, ExecMode::Native, InputSetting::Low, 1)
                    .expect("faulted run"),
            )
        })
    });
}

criterion_group! {
    name = benches;
    config = Criterion::default().sample_size(20).measurement_time(std::time::Duration::from_secs(2)).warm_up_time(std::time::Duration::from_millis(500));
    targets = bench_hook_poll, bench_clean_vs_faulted_run
}
criterion_main!(benches);
