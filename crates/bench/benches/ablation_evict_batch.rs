//! Ablation: EWB eviction batch size.
//!
//! Appendix A notes the driver evicts pages in batches "that is
//! typically 16 pages" while faults load back one page at a time. This
//! ablation sweeps the batch size on a thrashing workload: small batches
//! evict pages that are still hot less often but pay the sweep overhead
//! per fault; large batches amortize the sweep but evict deeper into the
//! working set.

use mem_sim::{AccessKind, PAGE_SIZE};
use sgx_sim::{SgxConfig, SgxMachine};
use sgxgauge_bench::{banner, emit, fk, fx};
use sgxgauge_core::report::ReportTable;

fn run(batch: usize) -> (u64, u64, u64) {
    // 16 MB EPC, 24 MB working set, random walk: persistent thrash.
    let cfg = SgxConfig {
        evict_batch: batch,
        epc_bytes: 16 << 20,
        epc_reserved_bytes: 0,
        ..Default::default()
    };
    let mut m = SgxMachine::new(cfg);
    let t = m.add_thread();
    let ws_pages = (24 << 20) / PAGE_SIZE;
    let e = m
        .create_enclave(ws_pages * PAGE_SIZE + (8 << 20), 1 << 20)
        .expect("enclave");
    m.ecall_enter(t, e).expect("enter");
    let heap = m.alloc_enclave_heap(e, ws_pages * PAGE_SIZE).expect("heap");
    for p in 0..ws_pages {
        m.access(t, heap + p * PAGE_SIZE, 8, AccessKind::Write);
    }
    m.reset_measurement();
    let mut x = 0x0123_4567_89ab_cdefu64;
    for _ in 0..300_000 {
        x ^= x << 13;
        x ^= x >> 7;
        x ^= x << 17;
        m.access(t, heap + (x % ws_pages) * PAGE_SIZE, 8, AccessKind::Read);
    }
    let c = m.sgx_counters();
    (m.mem().cycles_of(t), c.epc_evictions, c.epc_loadbacks)
}

fn main() {
    banner(
        "Ablation — EWB eviction batch size",
        "the driver's batch of 16 balances sweep amortization vs hot-page eviction",
    );
    let (base, _, _) = run(16);
    let mut table = ReportTable::new(
        "Random 1.5x-EPC walk under different eviction batches",
        &["batch", "cycles", "vs_batch16", "evictions", "loadbacks"],
    );
    for batch in [1usize, 4, 16, 64, 256] {
        let (cycles, ev, lb) = run(batch);
        table.push_row(vec![
            batch.to_string(),
            cycles.to_string(),
            fx(cycles as f64 / base as f64),
            fk(ev),
            fk(lb),
        ]);
    }
    emit("ablation_evict_batch", &table);
    println!("Shape check: very large batches evict hot pages (loadbacks rise);");
    println!("the driver's default of 16 sits near the flat bottom of the curve.");
}
