//! Ablation: multi-enclave EPC contention.
//!
//! §3.2.1: "Multiple instances of an enclave with a small memory
//! footprint may also cause a number of EPC faults" — the EPC is a
//! platform-wide resource. Each enclave here fits comfortably on its
//! own; run several side by side and the paging storm appears anyway.

use mem_sim::{AccessKind, PAGE_SIZE};
use sgx_sim::{SgxConfig, SgxMachine};
use sgxgauge_bench::{banner, emit, fk, scale};
use sgxgauge_core::report::ReportTable;

/// Runs `n` enclaves, each with a working set of a third of the EPC,
/// interleaving their access streams round-robin (as co-scheduled
/// tenants would); returns total cycles and evictions.
fn run(n: usize) -> (u64, u64) {
    let cfg = SgxConfig {
        epc_bytes: (92 << 20) / scale().max(1),
        epc_reserved_bytes: 0,
        ..Default::default()
    };
    let ws_pages = cfg.epc_bytes / PAGE_SIZE / 3;
    let mut m = SgxMachine::new(cfg);
    let mut threads = Vec::new();
    let mut heaps = Vec::new();
    for _ in 0..n {
        let t = m.add_thread();
        let e = m
            .create_enclave(ws_pages * PAGE_SIZE + (16 << 20), 1 << 20)
            .expect("enclave");
        m.ecall_enter(t, e).expect("enter");
        let heap = m.alloc_enclave_heap(e, ws_pages * PAGE_SIZE).expect("heap");
        threads.push(t);
        heaps.push(heap);
    }
    m.reset_measurement();
    // Interleaved sequential sweeps, 3 rounds each.
    for _ in 0..3 {
        for p in 0..ws_pages {
            for (i, &t) in threads.iter().enumerate() {
                m.access(t, heaps[i] + p * PAGE_SIZE, 8, AccessKind::Read);
            }
        }
    }
    let cycles: u64 = threads.iter().map(|&t| m.mem().cycles_of(t)).sum();
    (cycles / n as u64, m.sgx_counters().epc_evictions)
}

fn main() {
    banner(
        "Ablation — multi-enclave EPC contention",
        "enclaves that fit alone thrash together (EPC is platform-shared, §3.2.1)",
    );
    let (base, _) = run(1);
    let mut table = ReportTable::new(
        "N tenants, each using EPC/3, interleaved",
        &[
            "enclaves",
            "cycles_per_enclave",
            "slowdown",
            "total_evictions",
        ],
    );
    for n in [1usize, 2, 3, 4, 6] {
        let (per, ev) = run(n);
        table.push_row(vec![
            n.to_string(),
            per.to_string(),
            format!("{:.2}x", per as f64 / base as f64),
            fk(ev),
        ]);
    }
    emit("ablation_multi_enclave", &table);
    println!("Shape check: 1-3 enclaves fit (zero evictions); the 4th tips the EPC");
    println!("and every tenant slows down — faults are a platform externality.");
}
