//! Trace-plane overhead contract: tracing is observation, not
//! simulation — an instrumented run must charge exactly the same
//! simulated cycles as an uninstrumented one, and a disabled sink must
//! leave the golden cycle count untouched.
//!
//! The golden constant below is the B-Tree Native/Low runtime at
//! `--scale 64` captured before the trace plane landed; the bench fails
//! if the plane ever perturbs it by more than 2% (in practice it must
//! stay exact, and the traced-vs-untraced assertion *is* exact).

use sgxgauge_bench::{banner, fk};
use sgxgauge_core::{EnvConfig, ExecMode, InputSetting, Runner, RunnerConfig, TraceConfig};
use sgxgauge_workloads::suite_scaled;

/// B-Tree, Native, Low, `--scale 64`, paper platform — captured at the
/// seed commit, before the trace plane existed.
const GOLDEN_CYCLES: u64 = 31_279_725;

fn runner() -> Runner {
    Runner::new(RunnerConfig {
        env: EnvConfig::paper(ExecMode::Vanilla, 0),
        repetitions: 1,
    })
}

fn main() {
    banner(
        "Trace overhead — zero-cost contract of the tracing plane",
        "instrumentation reads the clocks, it never advances them",
    );
    let workloads = suite_scaled(64);
    let btree = workloads
        .iter()
        .find(|w| w.name().eq_ignore_ascii_case("btree"))
        .expect("btree workload");

    let untraced = runner()
        .run_once(btree.as_ref(), ExecMode::Native, InputSetting::Low)
        .expect("untraced run");
    let traced = runner()
        .tracing(TraceConfig::default())
        .run_once(btree.as_ref(), ExecMode::Native, InputSetting::Low)
        .expect("traced run");

    println!(
        "untraced {} cycles | traced {} cycles | golden {}",
        fk(untraced.runtime_cycles),
        fk(traced.runtime_cycles),
        fk(GOLDEN_CYCLES)
    );
    println!(
        "traced run: {} timeline points, {} phase rows",
        traced.timeline.len(),
        traced.phases.len()
    );

    assert_eq!(
        untraced.runtime_cycles, traced.runtime_cycles,
        "tracing must not charge simulated cycles"
    );
    assert_eq!(
        untraced.output.checksum, traced.output.checksum,
        "tracing must not perturb workload output"
    );
    let drift = untraced.runtime_cycles.abs_diff(GOLDEN_CYCLES);
    assert!(
        drift * 50 <= GOLDEN_CYCLES,
        "untraced runtime {} drifted more than 2% from golden {GOLDEN_CYCLES}",
        untraced.runtime_cycles
    );
    assert!(
        !traced.timeline.is_empty(),
        "traced run produced no timeline points"
    );
    assert!(
        traced.phases.iter().any(|p| p.phase == "run"),
        "traced run lost its implicit `run` span"
    );
    println!("PASS: zero-cost contract holds (drift {drift} cycles, bound 2%)");
}
