//! Figure 5: Native-mode performance impact per workload per input size.
//!
//! Paper (§5.3, Fig 5a/5b): overhead grows by up to 8.8x from Low to
//! Medium and a further 1.4x from Medium to High; EPC evictions grow by
//! up to 75x (Low→Medium) and 2.6x (Medium→High) — the cliff is at the
//! EPC boundary, not beyond it.

use sgxgauge_bench::{banner, emit, expect_report, fk, fx, run_grid, scale};
use sgxgauge_core::report::ReportTable;
use sgxgauge_core::{ExecMode, InputSetting, Workload};
use sgxgauge_workloads::{native_suite, suite_scaled};

fn main() {
    banner(
        "Figure 5 — Native mode per workload (5a: overhead, 5b: EPC evictions)",
        "Low->Medium jump up to 8.8x overhead / 75x evictions; Medium->High much flatter",
    );
    let suite: Vec<Box<dyn Workload>> = if scale() == 1 {
        native_suite()
    } else {
        suite_scaled(scale())
            .into_iter()
            .filter(|w| w.supports(ExecMode::Native))
            .collect()
    };
    let sweep = run_grid(
        &suite,
        &[ExecMode::Vanilla, ExecMode::Native],
        &InputSetting::ALL,
    );

    let mut table = ReportTable::new(
        "Fig 5a+5b: Native vs Vanilla overhead and EPC evictions",
        &[
            "workload",
            "setting",
            "overhead_vs_vanilla",
            "epc_evictions",
            "epc_loadbacks",
        ],
    );
    let mut max_lm: f64 = 0.0;
    let mut max_mh: f64 = 0.0;
    for (wi, wl) in suite.iter().enumerate() {
        let mut per_setting = Vec::new();
        for setting in InputSetting::ALL {
            let v = expect_report(&sweep, wi, ExecMode::Vanilla, setting);
            let n = expect_report(&sweep, wi, ExecMode::Native, setting);
            let overhead = n.runtime_cycles as f64 / v.runtime_cycles as f64;
            table.push_row(vec![
                wl.name().to_string(),
                setting.to_string(),
                fx(overhead),
                fk(n.sgx.epc_evictions),
                fk(n.sgx.epc_loadbacks),
            ]);
            per_setting.push(overhead);
        }
        max_lm = max_lm.max(per_setting[1] / per_setting[0]);
        max_mh = max_mh.max(per_setting[2] / per_setting[1]);
    }
    emit("fig05_native_mode", &table);
    println!("Shape check: max Low->Medium overhead growth = {max_lm:.1}x (paper: up to 8.8x);");
    println!("max Medium->High growth = {max_mh:.1}x (paper: up to 1.4x) — the cliff is at the boundary.");
}
