//! Table 5 / Appendix C: ranking counters by standardized regression
//! coefficients.
//!
//! Paper: fit execution time as a linear function of {walk cycles, stall
//! cycles, page faults, dTLB misses, LLC misses, EPC evictions}; the
//! coefficient magnitudes rank each counter's importance per workload.
//! "Most of the time paging and TLB-related counters are the most
//! correlated with the performance."

use gauge_stats::standardized_coefficients;
use sgxgauge_bench::{banner, emit, paper_runner, scale};
use sgxgauge_core::report::ReportTable;
use sgxgauge_core::{ExecMode, InputSetting, RunReport, Workload};
use sgxgauge_workloads::{suite, suite_scaled};

const COUNTER_NAMES: [&str; 6] = [
    "walk_cycles",
    "stall_cycles",
    "page_faults",
    "dtlb_misses",
    "llc_misses",
    "epc_evictions",
];

fn features(r: &RunReport) -> Vec<f64> {
    vec![
        r.counters.walk_cycles as f64,
        r.counters.stall_cycles as f64,
        r.counters.page_faults as f64,
        r.counters.dtlb_misses as f64,
        r.counters.llc_misses as f64,
        r.sgx.epc_evictions as f64,
    ]
}

fn main() {
    banner(
        "Table 5 — counter importance by standardized regression",
        "paging/TLB counters dominate execution-time prediction",
    );
    let runner = paper_runner();
    // Sample matrix: 3 settings x supported SGX modes x 3 size variants,
    // giving 9-18 observations per workload for 6 features. A minimum
    // divisor of 2 keeps this (the heaviest bench) tractable without
    // changing which counters dominate.
    let base = scale().max(2);
    let divisors = [base, base * 2, base * 3];

    let mut table = ReportTable::new(
        "Table 5: standardized coefficients (dominant counter starred)",
        &[
            "workload",
            "walk_cycles",
            "stall_cycles",
            "page_faults",
            "dtlb_misses",
            "llc_misses",
            "epc_evictions",
            "dominant",
        ],
    );

    let names: Vec<&'static str> = suite().iter().map(|w| w.name()).collect();
    for (wi, name) in names.iter().enumerate() {
        let mut xs: Vec<Vec<f64>> = Vec::new();
        let mut ys: Vec<f64> = Vec::new();
        for &d in &divisors {
            let wls: Vec<Box<dyn Workload>> = if d == 1 { suite() } else { suite_scaled(d) };
            let wl = &wls[wi];
            for mode in [ExecMode::Native, ExecMode::LibOs] {
                if !wl.supports(mode) {
                    continue;
                }
                for setting in InputSetting::ALL {
                    match runner.run_once(wl.as_ref(), mode, setting) {
                        Ok(r) => {
                            xs.push(features(&r));
                            ys.push(r.runtime_cycles as f64);
                        }
                        Err(e) => eprintln!("skipping {name} {mode} {setting}: {e}"),
                    }
                }
            }
        }
        match standardized_coefficients(&xs, &ys) {
            Ok(coefs) => {
                let dominant = coefs
                    .iter()
                    .enumerate()
                    .max_by(|a, b| a.1.abs().partial_cmp(&b.1.abs()).expect("no NaN"))
                    .map(|(i, _)| COUNTER_NAMES[i])
                    .unwrap_or("-");
                let mut row = vec![name.to_string()];
                row.extend(coefs.iter().map(|c| format!("{c:.2}")));
                row.push(dominant.to_string());
                table.push_row(row);
            }
            Err(e) => {
                let mut row = vec![name.to_string()];
                row.extend(std::iter::repeat_n("-".to_string(), 6));
                row.push(format!("({e})"));
                table.push_row(row);
            }
        }
    }
    emit("table5_regression", &table);
    println!("Shape check: the dominant column should mostly name paging/TLB counters (walk cycles, dTLB misses, page faults).");
}
