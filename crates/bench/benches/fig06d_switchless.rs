//! Figure 6d: switchless OCALLs improve Lighttpd latency.
//!
//! Paper (§5.6): with 8 proxy cores handling OCALLs, Lighttpd's dTLB
//! misses drop by 60% and latency improves by 30% relative to the
//! default OCALL implementation.

use sgxgauge_bench::{banner, emit, paper_env, scale};
use sgxgauge_core::report::ReportTable;
use sgxgauge_core::{ExecMode, InputSetting, Runner, RunnerConfig};
use sgxgauge_workloads::Lighttpd;

fn main() {
    banner(
        "Figure 6d — Lighttpd with switchless OCALLs",
        "switchless mode: dTLB misses -60%, latency -30%",
    );
    let divisor = scale().max(4);
    let wl = Lighttpd::scaled(divisor);

    let default_runner = Runner::new(RunnerConfig {
        env: paper_env(ExecMode::LibOs),
        repetitions: 1,
    });
    // The paper configures 8 cores for OCALL handling.
    let switchless_runner = Runner::new(RunnerConfig {
        env: paper_env(ExecMode::LibOs).with_switchless(8),
        repetitions: 1,
    });

    let base = default_runner
        .run_once(&wl, ExecMode::LibOs, InputSetting::Low)
        .expect("default");
    let swl = switchless_runner
        .run_once(&wl, ExecMode::LibOs, InputSetting::Low)
        .expect("switchless");

    let base_lat = base.output.metric("mean_latency_cycles").expect("metric");
    let swl_lat = swl.output.metric("mean_latency_cycles").expect("metric");

    let mut table = ReportTable::new(
        "Fig 6d: default vs switchless OCALLs (Lighttpd, Low)",
        &[
            "variant",
            "mean_latency_cycles",
            "dtlb_misses",
            "classic_ocalls",
            "switchless_ocalls",
            "tlb_flushes",
        ],
    );
    for (name, r, lat) in [("default", &base, base_lat), ("switchless", &swl, swl_lat)] {
        table.push_row(vec![
            name.to_string(),
            format!("{lat:.0}"),
            r.counters.dtlb_misses.to_string(),
            r.sgx.ocalls.to_string(),
            r.sgx.switchless_ocalls.to_string(),
            r.counters.tlb_flushes.to_string(),
        ]);
    }
    emit("fig06d_switchless", &table);

    let lat_gain = 100.0 * (1.0 - swl_lat / base_lat);
    let dtlb_gain =
        100.0 * (1.0 - swl.counters.dtlb_misses as f64 / base.counters.dtlb_misses.max(1) as f64);
    println!("Shape check: latency improvement = {lat_gain:.0}% (paper: 30%), dTLB-miss reduction = {dtlb_gain:.0}% (paper: 60%)");
    println!(
        "Switchless ratio check: {} classic vs {} switchless OCALLs",
        swl.sgx.ocalls, swl.sgx.switchless_ocalls
    );
}
