//! Figure 8 / Appendix B: Native-mode counter heat-map per workload.
//!
//! Paper: a per-workload matrix of counter overheads (Native vs Vanilla)
//! across the Low/Medium/High settings, with workload-specific analyses:
//! Blockchain's dTLB misses explode from ECALL flushes (§B.1), B-Tree's
//! misses are fault-dominated (§B.3), HashJoin's page faults grow ~246x
//! (§B.4), BFS stays flat from locality (§B.5), PageRank's own streaming
//! dominates (§B.6).

use sgxgauge_bench::{banner, emit, fx, paper_runner, scale};
use sgxgauge_core::report::{RatioRow, ReportTable};
use sgxgauge_core::{ExecMode, InputSetting, Workload};
use sgxgauge_workloads::{native_suite, suite_scaled};

fn main() {
    banner(
        "Figure 8 — Native-mode counter heat-map",
        "per-workload counter overheads vs Vanilla across input settings",
    );
    let runner = paper_runner();
    let suite: Vec<Box<dyn Workload>> = if scale() == 1 {
        native_suite()
    } else {
        suite_scaled(scale())
            .into_iter()
            .filter(|w| w.supports(ExecMode::Native))
            .collect()
    };

    let mut table = ReportTable::new(
        "Fig 8: Native/Vanilla counter ratios",
        &[
            "workload",
            "setting",
            "overhead",
            "dtlb_misses",
            "walk_cycles",
            "stall_cycles",
            "llc_misses",
            "page_faults",
            "ecalls",
        ],
    );
    for wl in &suite {
        for setting in InputSetting::ALL {
            let v = runner
                .run_once(wl.as_ref(), ExecMode::Vanilla, setting)
                .expect("vanilla");
            let n = runner
                .run_once(wl.as_ref(), ExecMode::Native, setting)
                .expect("native");
            let r = RatioRow::from_reports(&n, &v);
            table.push_row(vec![
                wl.name().to_string(),
                setting.to_string(),
                fx(r.overhead),
                fx(r.dtlb_misses),
                fx(r.walk_cycles),
                fx(r.stall_cycles),
                fx(r.llc_misses),
                fx(r.page_faults),
                n.sgx.ecalls.to_string(),
            ]);
        }
    }
    emit("fig08_native_heatmap", &table);
    println!("Shape checks (Appendix B): Blockchain shows the largest dTLB/walk ratios (ECALL TLB");
    println!(
        "flushes; paper: ~2000x); page-fault ratios (which include EPC faults, as perf counts"
    );
    println!(
        "them) grow with input size for the EPC-bound workloads; BFS stays comparatively flat"
    );
    println!("(locality, B.5); PageRank's own streaming dominates its dTLB losses (B.6).");
}
