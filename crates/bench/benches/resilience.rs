//! Resilience trajectory: what does surviving the storm cost?
//!
//! The campaign plane's whole value proposition is that a fault storm
//! changes *when* work completes, never *what* it computes — and that
//! the price of that guarantee (retry re-execution, backoff spend,
//! journal replay on restart) stays a small, pinned fraction of the
//! clean-run cycle bill. This harness measures exactly that:
//!
//! 1. runs one campaign grid fault-free and once more under a combined
//!    simulated-syscall + host-I/O fault storm, and reports
//!    `overhead_fraction = (storm - clean) / clean` in simulated
//!    cycles (runtime + retry backoff);
//! 2. runs the storm config as a kill/resume soak — three seeded
//!    kills, journal recovery on every restart — and asserts the
//!    tentpole convergence claim while recording how many artifacts
//!    the recovery path actually repaired.
//!
//! Unlike `hotpath.rs`, nothing here is wall-clock: every number is a
//! deterministic function of the config and the salted fault plans, so
//! the committed `BENCH_resilience.json` trajectory point is exact and
//! the regression gate can be tight. A rising overhead fraction means
//! the supervision machinery started paying for resilience it didn't
//! need (spurious retries, over-eager backoff); the gate fails before
//! that lands.
//!
//! Env knobs: `SGXGAUGE_PERF_OUT=<path>` overrides where the JSON is
//! written, `SGXGAUGE_PERF_BASELINE=<path>` arms the regression gate.

use campaign::{run_campaign, run_soak, CampaignConfig};
use sgxgauge_bench::{banner, results_dir};
use std::path::PathBuf;

/// The measured overhead fraction may exceed the committed trajectory
/// point by at most this factor. The metric is deterministic (simulated
/// cycles, salted plans — no host noise), so the headroom only absorbs
/// deliberate cost-model retuning, not measurement jitter; a supervision
/// regression that doubles retry spend blows well through it.
const OVERHEAD_HEADROOM: f64 = 1.25;

/// The shared grid: an EPC-sensitive stage plus a syscall-heavy one,
/// two reps, two-wide waves — small enough for CI seconds, wide enough
/// that retries, backoff and checkpoint adoption all occur under the
/// storm plans. The storm draws each host syscall failed at 1% —
/// Blockchain issues enough syscalls that cells fail transiently and
/// recover within the retry allowance (the probe at 2%+ tips into
/// permanent transients, which would measure giving up, not surviving).
fn config(name: &str, storm: bool) -> CampaignConfig {
    let faults = if storm {
        "faults = \"syscall=10\"\nio_faults = \"eio=30,torn=15\"\n"
    } else {
        ""
    };
    let text = format!(
        "[campaign]\nname = \"{name}\"\nseed = 42\nscale = 4096\n\
         profile = \"quick\"\nreps = 2\njobs = 2\nretries = 2\n\
         breaker_threshold = 3\nbreaker_cooldown = 1\n\
         [[stage]]\nname = \"join\"\nmodes = [\"vanilla\"]\n\
         settings = [\"low\"]\nworkloads = [\"HashJoin\"]\n{faults}\
         [[stage]]\nname = \"chain\"\nmodes = [\"vanilla\"]\n\
         settings = [\"low\"]\nworkloads = [\"Blockchain\"]\n{faults}"
    );
    CampaignConfig::parse(&text).expect("bench config parses")
}

fn scratch(name: &str) -> PathBuf {
    let mut p = std::env::temp_dir();
    p.push(format!(
        "sgxgauge-bench-resilience-{}-{name}",
        std::process::id()
    ));
    let _ = std::fs::remove_dir_all(&p);
    p
}

/// Pulls `"key": <number>` out of a JSON blob without a parser (the
/// suite vendors no serde; the trajectory format is flat by design).
fn json_number(blob: &str, key: &str) -> Option<f64> {
    let needle = format!("\"{key}\":");
    let at = blob.find(&needle)? + needle.len();
    let rest = blob[at..].trim_start();
    let end = rest
        .find(|c: char| !(c.is_ascii_digit() || c == '.' || c == '-' || c == 'e' || c == '+'))
        .unwrap_or(rest.len());
    rest[..end].parse().ok()
}

/// Resolves the baseline path as given, falling back to
/// workspace-root-relative: cargo runs bench binaries with the package
/// as CWD, while CI (and humans) name the committed trajectory file
/// relative to the repo root.
fn baseline_file(path: &str) -> std::path::PathBuf {
    let p = std::path::PathBuf::from(path);
    if p.is_absolute() || p.exists() {
        return p;
    }
    std::path::PathBuf::from(env!("CARGO_MANIFEST_DIR"))
        .join("../..")
        .join(p)
}

fn main() {
    banner(
        "Resilience overhead — cycle cost of surviving the fault storm",
        "retry + backoff + recovery spend as a fraction of the clean bill",
    );

    // Leg 1: clean vs storm on the identical grid.
    let clean_out = scratch("clean");
    let clean = run_campaign(&config("clean", false), &clean_out, true, None)
        .expect("clean campaign completes");
    let storm_out = scratch("storm");
    let storm = run_campaign(&config("storm", true), &storm_out, true, None)
        .expect("storm campaign completes");
    let clean_total = clean.total_cycles();
    let storm_total = storm.total_cycles();
    assert!(clean_total > 0, "clean campaign must do work");
    assert!(
        storm_total >= clean_total,
        "the storm can only add cycles: clean {clean_total}, storm {storm_total}"
    );
    assert!(
        storm.total_backoff_cycles > 0,
        "a syscall storm with retries must spend backoff"
    );
    let failed_rows = |out: &std::path::Path, stage: &str| {
        std::fs::read_to_string(out.join(stage).join("report.csv"))
            .expect("stage report")
            .lines()
            .filter(|l| l.contains(",transient,") || l.contains(",degraded,"))
            .count()
    };
    assert_eq!(
        failed_rows(&storm_out, "chain"),
        0,
        "the storm must be survivable: every cell recovers within its retries"
    );
    let overhead = (storm_total - clean_total) as f64 / clean_total as f64;
    println!(
        "clean {:>10} cycles\nstorm {:>10} cycles ({} backoff)\noverhead {:.4} of clean",
        clean_total, storm_total, storm.total_backoff_cycles, overhead
    );

    // Leg 2: the storm config as a kill/resume soak. Convergence is the
    // tentpole invariant; the recovery counters quantify how much the
    // journal-replay path was actually exercised while holding it.
    let soak_out = scratch("soak");
    let outcome = run_soak(&config("storm", true), &soak_out, 3).expect("soak completes");
    assert_eq!(outcome.kills_fired, 3, "every scheduled kill must land");
    assert!(
        outcome.converged,
        "soak diverged from golden: {:?}",
        outcome.mismatches
    );
    assert_eq!(
        outcome.golden_cycles, outcome.storm_cycles,
        "converged runs must also agree on the cycle bill"
    );
    let recovered: usize = outcome.report.stages.iter().map(|s| s.recovered).sum();
    let adopted: usize = outcome.report.stages.iter().map(|s| s.adopted).sum();
    println!(
        "soak: 3 kills fired, converged; final pass adopted {adopted} cells, \
         recovery repaired {recovered} artifacts"
    );

    for dir in [&clean_out, &storm_out, &soak_out] {
        let _ = std::fs::remove_dir_all(dir);
    }

    let json = format!(
        "{{\n  \"bench\": \"resilience\",\n  \"clean_cycles\": {clean_total},\n  \
         \"storm_cycles\": {storm_total},\n  \"storm_backoff_cycles\": {},\n  \
         \"overhead_fraction\": {overhead:.4},\n  \"soak_kills\": {},\n  \
         \"soak_converged\": {},\n  \"soak_final_adopted\": {adopted},\n  \
         \"soak_recovered_artifacts\": {recovered}\n}}\n",
        storm.total_backoff_cycles, outcome.kills_fired, outcome.converged,
    );
    let out = std::env::var("SGXGAUGE_PERF_OUT")
        .map(PathBuf::from)
        .unwrap_or_else(|_| results_dir().join("BENCH_resilience.json"));
    if let Some(dir) = out.parent() {
        let _ = std::fs::create_dir_all(dir);
    }
    match std::fs::write(&out, &json) {
        Ok(()) => println!("[json] {}", out.display()),
        Err(e) => eprintln!("[json] failed to write {}: {e}", out.display()),
    }

    // Regression gate against the committed trajectory point.
    if let Ok(baseline_path) = std::env::var("SGXGAUGE_PERF_BASELINE") {
        let blob = std::fs::read_to_string(baseline_file(&baseline_path))
            .unwrap_or_else(|e| panic!("cannot read baseline {baseline_path}: {e}"));
        let baseline = json_number(&blob, "overhead_fraction")
            .unwrap_or_else(|| panic!("no overhead_fraction in {baseline_path}"));
        println!(
            "baseline overhead {:.4}, measured {:.4} (gate: <= {:.2}x baseline)",
            baseline, overhead, OVERHEAD_HEADROOM
        );
        assert!(
            overhead <= baseline * OVERHEAD_HEADROOM,
            "resilience regression: storm overhead {overhead:.4} exceeds \
             {OVERHEAD_HEADROOM}x the committed {baseline:.4} trajectory point"
        );
    }
    println!("PASS: storm survival cost pinned at {overhead:.4} of clean cycles");
}
