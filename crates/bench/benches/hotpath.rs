//! Hot-path throughput trajectory: how fast does the simulator simulate?
//!
//! Every figure in the suite is bottlenecked on the per-access pipeline —
//! `sgx_sim::SgxMachine::access` routing into `Epc::touch` plus
//! `mem_sim::Machine::access` — so this harness pins its *host*
//! throughput the same way `trace_overhead.rs` pins simulated cycles. It
//! embeds a frozen replica of the pre-optimization pipeline (`legacy`
//! below) and races three implementations over one deterministic
//! EPC-resident access stream with periodic enclave transitions:
//!
//! 1. `legacy`  — the frozen pre-PR pipeline: per-call dispatch across
//!    an un-inlined crate boundary, a SipHash `HashMap<PageKey, _>` EPC
//!    residency probe per page, two-pass u32-stamp TLB probes with
//!    `%`-indexed sets, a SipHash page table, a per-call latency-model
//!    clone, and a per-access trace poll through an `Option<Box<_>>`;
//! 2. `percall` — today's `SgxMachine::access`, one call per access;
//! 3. `stream`  — today's `SgxMachine::access_stream` over batched runs.
//!
//! All three must charge **identical simulated cycles and counters**
//! (the replica is cycle-faithful, which is what makes the race
//! meaningful), and the batched path must beat the replica by at least
//! [`SPEEDUP_FLOOR`]. Results land in a `BENCH_hotpath.json`; CI re-runs
//! the harness in smoke mode and fails if the measured speedup falls
//! below 90% of the committed trajectory point
//! (`SGXGAUGE_PERF_BASELINE`). Gating on the speedup *ratio* — both
//! contenders timed on the same host, same run — keeps the gate
//! machine-independent where raw ns/access would not be.
//!
//! # Why the floor is where it is
//!
//! The replica is calibrated against the real pre-PR build: checking out
//! the pre-PR tree and racing its actual `SgxMachine::access` against
//! today's over this exact profile (single-core container, trace sink
//! armed) measured 33.5 ns/access pre-PR vs 19.1 ns/access batched —
//! 1.76x — with byte-identical simulated cycles. The dispatch overheads
//! this PR removed (SipHash probes, `%`-set divisions, per-call clones,
//! heap-allocating batch queues) are real but sit on top of ~13
//! ns/access of irreducible *model* work (TLB LRU update, L1 tag probe,
//! counter and clock arithmetic) that any cycle-faithful implementation
//! must execute per line. That shared floor bounds the honest ratio
//! near 2x on this host; a 5x point would require either breaking cycle
//! fidelity or padding the replica with costs the pre-PR build never
//! paid. The trajectory therefore starts at the measured ~1.7x, and the
//! floor below guards the gap from regressing, not a hoped-for 5x.
//!
//! Env knobs: `SGXGAUGE_PERF_SMOKE=1` shrinks the stream for CI,
//! `SGXGAUGE_PERF_OUT=<path>` overrides where the JSON is written,
//! `SGXGAUGE_PERF_BASELINE=<path>` arms the regression gate.

use mem_sim::{AccessKind, StreamRun, PAGE_SIZE};
use sgx_sim::enclave::EnclaveId;
use sgx_sim::{SgxConfig, SgxMachine};
use sgxgauge_bench::{banner, results_dir};
use std::time::Instant;

/// The batched path must beat the frozen legacy pipeline by at least
/// this factor. Set from the real pre-PR-build race (1.76x measured,
/// see the module docs): low enough to absorb single-core container
/// noise, high enough that losing any one recovered overhead class
/// (the arena EPC index, the division-free probes, the batched counter
/// flush) trips it.
const SPEEDUP_FLOOR: f64 = 1.35;

/// Accesses per simulated ECALL window: every window is bracketed by an
/// EEXIT/EENTER pair whose mandatory TLB flushes keep the refill and
/// page-walk machinery honestly exercised (§2.3), while the working set
/// stays EPC-resident so no jittered fault costs enter the race.
const WINDOW: usize = 256;

/// Hot working set in pages: slightly more L1D lines (576) than the
/// modeled L1 holds (512), so a fraction of accesses fall through to
/// the LLC probe path and the set-index arithmetic of both contenders
/// stays in the race.
const HOT_PAGES: u64 = 9;

/// Frozen replica of the pre-optimization access pipeline.
///
/// This is deliberately *not* shared with the library: it reproduces the
/// retired arithmetic — `%`-indexed set lookup, separate
/// lookup-then-insert TLB passes with `u32` LRU stamps, std `HashMap`s
/// (SipHash) for the page table and the EPC residency index, a per-call
/// latency-model clone, and per-call dispatch across what was an
/// un-inlined crate boundary — so the race above always compares
/// against the same fixed contender. Cycle charging is byte-identical
/// to the library by construction; the harness asserts it on every run.
mod legacy {
    use mem_sim::{AccessAttrs, AccessKind, LatencyModel, LINE_SHIFT, PAGE_SHIFT};
    use std::collections::HashMap;

    const STLB_HIT_CYCLES: u64 = 7;

    struct TlbLevel {
        tags: Vec<u64>,
        stamps: Vec<u32>,
        epochs: Vec<u64>,
        sets: usize,
        ways: usize,
        clock: u32,
        epoch: u64,
    }

    impl TlbLevel {
        fn new(entries: usize, ways: usize) -> Self {
            let sets = entries / ways;
            TlbLevel {
                tags: vec![u64::MAX; entries],
                stamps: vec![0; entries],
                epochs: vec![0; entries],
                sets,
                ways,
                clock: 0,
                epoch: 1,
            }
        }

        #[inline]
        fn set_of(&self, page: u64) -> usize {
            (page as usize) % self.sets
        }

        #[inline]
        fn valid(&self, idx: usize) -> bool {
            self.epochs[idx] == self.epoch && self.tags[idx] != u64::MAX
        }

        fn lookup(&mut self, page: u64) -> bool {
            let base = self.set_of(page) * self.ways;
            self.clock = self.clock.wrapping_add(1);
            for w in 0..self.ways {
                if self.valid(base + w) && self.tags[base + w] == page {
                    self.stamps[base + w] = self.clock;
                    return true;
                }
            }
            false
        }

        fn insert(&mut self, page: u64) {
            let base = self.set_of(page) * self.ways;
            self.clock = self.clock.wrapping_add(1);
            let mut victim = 0;
            let mut oldest_age = 0;
            for w in 0..self.ways {
                if !self.valid(base + w) {
                    victim = w;
                    break;
                }
                let age = self.clock.wrapping_sub(self.stamps[base + w]);
                if age >= oldest_age {
                    victim = w;
                    oldest_age = age;
                }
            }
            self.tags[base + victim] = page;
            self.stamps[base + victim] = self.clock;
            self.epochs[base + victim] = self.epoch;
        }

        fn flush(&mut self) {
            self.epoch += 1;
        }
    }

    enum TlbOutcome {
        L1Hit,
        StlbHit,
        Miss,
    }

    struct Tlb {
        l1: TlbLevel,
        stlb: TlbLevel,
    }

    impl Tlb {
        fn translate(&mut self, page: u64) -> TlbOutcome {
            if self.l1.lookup(page) {
                return TlbOutcome::L1Hit;
            }
            if self.stlb.lookup(page) {
                self.l1.insert(page);
                return TlbOutcome::StlbHit;
            }
            self.stlb.insert(page);
            self.l1.insert(page);
            TlbOutcome::Miss
        }
    }

    struct L1Cache {
        tags: Vec<u64>,
    }

    impl L1Cache {
        #[inline]
        fn access(&mut self, line: u64) -> bool {
            let s = (line as usize) & (self.tags.len() - 1);
            if self.tags[s] == line {
                true
            } else {
                self.tags[s] = line;
                false
            }
        }
    }

    struct Llc {
        tags: Vec<u64>,
        stamps: Vec<u32>,
        sets: usize,
        ways: usize,
        clock: u32,
    }

    impl Llc {
        fn access(&mut self, line: u64) -> bool {
            let set = (line as usize) % self.sets;
            let base = set * self.ways;
            self.clock = self.clock.wrapping_add(1);
            let mut victim = 0;
            let mut oldest_age = 0;
            for w in 0..self.ways {
                let t = self.tags[base + w];
                if t == line {
                    self.stamps[base + w] = self.clock;
                    return true;
                }
                if t == u64::MAX {
                    victim = w;
                    oldest_age = u32::MAX;
                    continue;
                }
                let age = self.clock.wrapping_sub(self.stamps[base + w]);
                if age >= oldest_age && oldest_age != u32::MAX {
                    victim = w;
                    oldest_age = age;
                }
            }
            self.tags[base + victim] = line;
            self.stamps[base + victim] = self.clock;
            false
        }
    }

    struct WalkCache {
        tags: Vec<u64>,
        epochs: Vec<u64>,
        epoch: u64,
    }

    impl WalkCache {
        #[inline]
        fn walk(&mut self, page: u64) -> bool {
            let region = page >> 9;
            let slot = (region as usize) & (self.tags.len() - 1);
            if self.epochs[slot] == self.epoch && self.tags[slot] == region {
                true
            } else {
                self.tags[slot] = region;
                self.epochs[slot] = self.epoch;
                false
            }
        }

        fn flush(&mut self) {
            self.epoch += 1;
        }
    }

    /// The counter fields the pre-PR access path read-modify-wrote on
    /// every call (the library batches these into registers now). Kept
    /// so the harness can also assert counter fidelity, not just cycles.
    #[derive(Debug, Default, Clone, Copy)]
    pub struct Counters {
        pub stlb_hits: u64,
        pub dtlb_misses: u64,
        pub page_faults: u64,
        pub walk_cycles: u64,
        pub mem_reads: u64,
        pub mem_writes: u64,
        pub llc_accesses: u64,
        pub llc_misses: u64,
        pub mee_cycles: u64,
        pub stall_cycles: u64,
        pub tlb_flushes: u64,
    }

    impl Counters {
        /// Field-wise `self - earlier`, for per-repetition deltas.
        pub fn delta(self, earlier: Counters) -> Counters {
            Counters {
                stlb_hits: self.stlb_hits - earlier.stlb_hits,
                dtlb_misses: self.dtlb_misses - earlier.dtlb_misses,
                page_faults: self.page_faults - earlier.page_faults,
                walk_cycles: self.walk_cycles - earlier.walk_cycles,
                mem_reads: self.mem_reads - earlier.mem_reads,
                mem_writes: self.mem_writes - earlier.mem_writes,
                llc_accesses: self.llc_accesses - earlier.llc_accesses,
                llc_misses: self.llc_misses - earlier.llc_misses,
                mee_cycles: self.mee_cycles - earlier.mee_cycles,
                stall_cycles: self.stall_cycles - earlier.stall_cycles,
                tlb_flushes: self.tlb_flushes - earlier.tlb_flushes,
            }
        }
    }

    /// Per-call outcome struct, built exactly as the pre-PR path did.
    #[derive(Debug, Default, Clone, Copy)]
    pub struct Outcome {
        pub cycles: u64,
        pub dtlb_miss: bool,
        pub llc_miss: bool,
        pub minor_fault: bool,
    }

    /// The pre-PR memory machine: one thread, SipHash page table,
    /// per-call latency clone, unchecked `vaddr + len - 1` (callers stay
    /// clear of the top of the address space — the overflow is one of
    /// the bugs this PR fixed, not a behavior to reproduce).
    pub struct Machine {
        latency: LatencyModel,
        tlb: Tlb,
        l1: L1Cache,
        walk_cache: WalkCache,
        llc: Llc,
        pages: HashMap<u64, u64>,
        /// Simulated cycles charged so far (the equivalence check).
        pub cycles: u64,
        /// Per-access counter totals (the fidelity check).
        pub counters: Counters,
    }

    impl Machine {
        pub fn new(cfg: &mem_sim::MachineConfig) -> Self {
            Machine {
                latency: cfg.latency,
                tlb: Tlb {
                    l1: TlbLevel::new(cfg.l1_tlb_entries, cfg.l1_tlb_ways),
                    stlb: TlbLevel::new(cfg.stlb_entries, cfg.stlb_ways),
                },
                l1: L1Cache {
                    tags: vec![u64::MAX; cfg.l1_cache_lines.next_power_of_two()],
                },
                walk_cache: WalkCache {
                    tags: vec![u64::MAX; 32],
                    epochs: vec![0; 32],
                    epoch: 1,
                },
                llc: Llc {
                    tags: vec![u64::MAX; cfg.llc_bytes >> LINE_SHIFT as usize],
                    stamps: vec![0; cfg.llc_bytes >> LINE_SHIFT as usize],
                    sets: (cfg.llc_bytes >> LINE_SHIFT as usize) / cfg.llc_ways,
                    ways: cfg.llc_ways,
                    clock: 0,
                },
                pages: HashMap::new(),
                cycles: 0,
                counters: Counters::default(),
            }
        }

        /// A faithful transcription of the pre-PR `Machine::access`:
        /// per-call latency-model clone (today's `LatencyModel` is
        /// `Copy`, hence the lint override), per-line read-modify-writes
        /// of every counter it maintained, the branching read/write
        /// classification, EPCM surcharges on EPC walks, the MEE
        /// multiplier on encrypted-DRAM fills, and the outcome struct.
        ///
        /// `inline(never)` models the pre-PR call boundary: the
        /// workspace builds without LTO, so `mem_sim::Machine::access`
        /// could never inline into the SGX layer or workload loops.
        #[inline(never)]
        #[allow(clippy::clone_on_copy)]
        pub fn access(
            &mut self,
            vaddr: u64,
            len: u64,
            kind: AccessKind,
            attrs: &AccessAttrs,
        ) -> Outcome {
            let mut out = Outcome::default();
            if len == 0 {
                return out;
            }
            let lat = self.latency.clone();
            let first_line = vaddr >> LINE_SHIFT;
            let last_line = (vaddr + len - 1) >> LINE_SHIFT;
            let mut cur_page = u64::MAX;
            let mut cycles = 0u64;
            for line in first_line..=last_line {
                let page = line >> (PAGE_SHIFT - LINE_SHIFT);
                if page != cur_page {
                    cur_page = page;
                    match self.tlb.translate(page) {
                        TlbOutcome::L1Hit => {}
                        TlbOutcome::StlbHit => {
                            self.counters.stlb_hits += 1;
                            cycles += STLB_HIT_CYCLES;
                        }
                        TlbOutcome::Miss => {
                            self.counters.dtlb_misses += 1;
                            out.dtlb_miss = true;
                            let slot = self.pages.entry(page).or_insert(0);
                            *slot += 1;
                            if *slot == 1 {
                                self.counters.page_faults += 1;
                                out.minor_fault = true;
                                cycles += lat.minor_fault;
                                self.walk_cache.flush();
                            }
                            let fast = self.walk_cache.walk(page);
                            let mut walk = if fast { lat.walk_fast } else { lat.walk_slow };
                            if attrs.epcm_check {
                                walk += lat.epcm_check;
                            }
                            self.counters.walk_cycles += walk;
                            cycles += walk;
                        }
                    }
                }
                match kind {
                    AccessKind::Read => self.counters.mem_reads += 1,
                    AccessKind::Write => self.counters.mem_writes += 1,
                }
                let mem_cycles = if self.l1.access(line) {
                    lat.l1_hit
                } else {
                    self.counters.llc_accesses += 1;
                    if self.llc.access(line) {
                        lat.llc_hit
                    } else {
                        self.counters.llc_misses += 1;
                        out.llc_miss = true;
                        if attrs.encrypted_dram {
                            let enc = lat.dram_encrypted();
                            self.counters.mee_cycles += enc - lat.dram.min(enc);
                            enc
                        } else {
                            lat.dram
                        }
                    }
                };
                self.counters.stall_cycles += mem_cycles - lat.l1_hit;
                cycles += mem_cycles;
            }
            self.cycles += cycles;
            out.cycles = cycles;
            out
        }

        /// The enclave-transition TLB flush, as the pre-PR
        /// `Machine::flush_tlb` performed it.
        pub fn flush_tlb(&mut self) {
            self.tlb.l1.flush();
            self.tlb.stlb.flush();
            self.walk_cache.flush();
            self.counters.tlb_flushes += 1;
        }
    }

    /// The pre-PR periodic-sample schedule, boxed as the machine boxed
    /// its sink: the pre-PR `trace_tick` chased this pointer and
    /// compared the schedule on every access (the snapshot itself was
    /// only assembled when due — which it never is at the interval the
    /// harness arms).
    pub struct Poll {
        interval: u64,
        next: u64,
    }

    impl Poll {
        #[inline]
        fn due(&self, now: u64) -> bool {
            self.interval != 0 && now >= self.next
        }
    }

    /// The pre-PR SGX pipeline around the memory machine: ELRANGE
    /// routing, the per-page streaming memo backed by a SipHash
    /// `HashMap<PageKey, usize>` residency index with clock reference
    /// bits, EEXIT/EENTER transitions with their mandatory flushes, and
    /// the per-access trace poll.
    pub struct Sgx {
        pub mem: Machine,
        elrange: (u64, u64),
        resident: HashMap<(usize, u64), usize>,
        frames: Vec<bool>,
        last_touched: Option<(usize, u64)>,
        poll: Option<Box<Poll>>,
        events: Vec<(u64, u32)>,
        eexit_cycles: u64,
        eenter_cycles: u64,
        pub ecalls: u64,
        pub snapshots: u64,
    }

    impl Sgx {
        pub fn new(
            mem: Machine,
            elrange: (u64, u64),
            eexit_cycles: u64,
            eenter_cycles: u64,
        ) -> Self {
            Sgx {
                mem,
                elrange,
                resident: HashMap::new(),
                frames: Vec::new(),
                last_touched: None,
                poll: None,
                events: Vec::new(),
                eexit_cycles,
                eenter_cycles,
                ecalls: 0,
                snapshots: 0,
            }
        }

        /// Arms the periodic-sample schedule (the bench uses an interval
        /// beyond the simulated horizon: the *poll* is the cost under
        /// test, not the snapshot).
        pub fn arm_poll(&mut self, interval: u64) {
            self.poll = Some(Box::new(Poll {
                interval,
                next: interval,
            }));
        }

        /// Marks a page resident, as the pre-PR EPC did after servicing
        /// its fault (the harness pre-faults the working set; the race
        /// itself must stay fault-free so no jittered driver costs enter
        /// the cycle comparison).
        pub fn make_resident(&mut self, page: u64) {
            let idx = self.frames.len();
            self.frames.push(false);
            self.resident.insert((0, page), idx);
        }

        /// A faithful transcription of the pre-PR `SgxMachine::access`
        /// resident path: ELRANGE route check, per-page memo then
        /// SipHash residency probe (refreshing the clock reference bit),
        /// the un-inlined memory access with EPC attributes, and the
        /// trace poll. `inline(never)` models the pre-PR `sgx-sim` crate
        /// boundary, as for [`Machine::access`].
        #[inline(never)]
        pub fn access(&mut self, vaddr: u64, len: u64, kind: AccessKind) -> Outcome {
            if vaddr >= self.elrange.0 && vaddr < self.elrange.1 {
                let first_page = vaddr >> PAGE_SHIFT;
                let last_page = (vaddr + len - 1) >> PAGE_SHIFT;
                for page in first_page..=last_page {
                    if self.last_touched == Some((0, page)) {
                        continue;
                    }
                    match self.resident.get(&(0, page)) {
                        Some(&idx) => {
                            self.frames[idx] = true;
                            self.last_touched = Some((0, page));
                        }
                        None => panic!("hot-path stream must stay EPC-resident"),
                    }
                }
                let out = self.mem.access(vaddr, len, kind, &AccessAttrs::EPC);
                self.trace_tick();
                out
            } else {
                let out = self.mem.access(vaddr, len, kind, &AccessAttrs::PLAIN);
                self.trace_tick();
                out
            }
        }

        /// One EEXIT + EENTER round trip: the transition cycle charges,
        /// both mandatory TLB flushes, the transition trace events, and
        /// the polls — exactly the pre-PR window boundary.
        pub fn transition(&mut self) {
            self.mem.cycles += self.eexit_cycles;
            self.mem.flush_tlb();
            self.record_event(0);
            self.trace_tick();
            self.ecalls += 1;
            self.mem.cycles += self.eenter_cycles;
            self.mem.flush_tlb();
            self.record_event(1);
            self.trace_tick();
        }

        #[inline]
        fn record_event(&mut self, code: u32) {
            let now = self.mem.cycles;
            self.events.push((now, code));
        }

        /// Pre-PR sampling poll: one `Option<Box>` pointer chase and a
        /// schedule compare per access.
        #[inline]
        fn trace_tick(&mut self) {
            if let Some(p) = self.poll.as_deref() {
                if p.due(self.mem.cycles) {
                    self.snapshots += 1;
                }
            }
        }
    }
}

/// One synthetic access, relative to the enclave heap base:
/// `(offset, len, kind)`.
type Access = (u64, u64, AccessKind);

/// Deterministic LCG-driven stream shaped like the suite's enclave
/// inner loops (B-Tree node walks, hashtable probes, OpenSSL block
/// processing): aligned 8-byte reads and writes alternating across a
/// hot working set of [`HOT_PAGES`] pages — page-alternating so the
/// streaming memo misses and the per-page EPC residency probe is truly
/// exercised on (nearly) every access — with 1 in 128 accesses a
/// page-crossing bulk run so the multi-line and page-crossing paths
/// stay in the race. The working set stays EPC- and LLC-resident: the
/// costs under test are dispatch and probe arithmetic, not simulated
/// DRAM waits that no host-side optimization can remove.
fn synth_stream(n: usize) -> Vec<Access> {
    let mut state: u64 = 0x5eed_cafe_f00d_0001;
    let mut next = move || {
        state = state
            .wrapping_mul(6364136223846793005)
            .wrapping_add(1442695040888963407);
        state >> 11
    };
    (0..n)
        .map(|_| {
            let r = next();
            let kind = if r % 3 == 0 {
                AccessKind::Write
            } else {
                AccessKind::Read
            };
            let offset = (next() % 512) * 8;
            if r % 128 == 1 {
                // Bulk run: page-crossing memcpy-style streak (stays
                // inside the warmed working set).
                let page = next() % (HOT_PAGES - 1);
                (page * PAGE_SIZE + offset, 512 + next() % 1536, kind)
            } else {
                // Hot inner loop: aligned single-line access.
                let page = next() % HOT_PAGES;
                (page * PAGE_SIZE + offset, 8, kind)
            }
        })
        .collect()
}

/// Best-of-`reps` wall-clock nanoseconds for `f`, with the simulated
/// cycles of the last run (identical across runs — the model is
/// deterministic and the stream is replayed from the same state)
/// returned alongside.
fn time_best<F: FnMut() -> u64>(reps: usize, mut f: F) -> (u64, u64) {
    let mut best_ns = u64::MAX;
    let mut cycles = 0;
    for _ in 0..reps {
        let t0 = Instant::now();
        cycles = f();
        best_ns = best_ns.min(t0.elapsed().as_nanos() as u64);
    }
    (best_ns, cycles)
}

/// Pulls `"key": <number>` out of a JSON blob without a parser (the
/// suite vendors no serde; the trajectory format is flat by design).
fn json_number(blob: &str, key: &str) -> Option<f64> {
    let needle = format!("\"{key}\":");
    let at = blob.find(&needle)? + needle.len();
    let rest = blob[at..].trim_start();
    let end = rest
        .find(|c: char| !(c.is_ascii_digit() || c == '.' || c == '-' || c == 'e' || c == '+'))
        .unwrap_or(rest.len());
    rest[..end].parse().ok()
}

/// Sample interval armed on both contenders: far beyond the simulated
/// horizon, so the per-access *poll* is measured but no snapshot ever
/// fires inside the race.
const SINK_INTERVAL: u64 = u64::MAX / 2;

/// Builds, enters and warms the real platform: every hot page is
/// faulted into the EPC and every hot line touched, then measurement
/// state is reset and the trace plane armed (sweeps run with the sink
/// armed, so the race reproduces that configuration).
fn build_real(cfg: &SgxConfig) -> (SgxMachine, mem_sim::ThreadId, EnclaveId, u64) {
    let mut m = SgxMachine::new(cfg.clone());
    let t = m.add_thread();
    let e = m
        .create_enclave(64 * PAGE_SIZE, 32 * PAGE_SIZE)
        .expect("enclave build");
    m.ecall_enter(t, e).expect("enter");
    let heap = m.alloc_enclave_heap(e, 16 * PAGE_SIZE).expect("heap alloc");
    for p in 0..HOT_PAGES {
        for l in 0..(PAGE_SIZE / 64) {
            m.access(t, heap + p * PAGE_SIZE + l * 64, 8, AccessKind::Read);
        }
    }
    m.reset_measurement();
    m.mem_mut()
        .set_trace_sink(trace::TraceSink::with_config(1 << 16, SINK_INTERVAL));
    (m, t, e, heap)
}

/// Resolves the baseline path as given, falling back to
/// workspace-root-relative: cargo runs bench binaries with the package
/// as CWD, while CI (and humans) name the committed trajectory file
/// relative to the repo root.
fn baseline_file(path: &str) -> std::path::PathBuf {
    let p = std::path::PathBuf::from(path);
    if p.is_absolute() || p.exists() {
        return p;
    }
    std::path::PathBuf::from(env!("CARGO_MANIFEST_DIR"))
        .join("../..")
        .join(p)
}

fn main() {
    banner(
        "Hot-path throughput — perf trajectory of the access pipeline",
        "the simulator itself must be fast enough to sweep the paper grid",
    );
    let smoke = std::env::var("SGXGAUGE_PERF_SMOKE").is_ok_and(|v| v != "0");
    let n: usize = if smoke { 300_000 } else { 2_000_000 };
    // Smoke mode shrinks the stream ~7x, so each repetition is cheap but
    // a single descheduling blip distorts it far more; best-of over many
    // more repetitions buys back the stability the shorter stream loses.
    let reps = if smoke { 12 } else { 4 };
    let stream = synth_stream(n);
    let cfg = SgxConfig::default();

    // Contender 1: the frozen pre-PR pipeline replica, warmed over the
    // identical access sequence (fault-free: residency is pre-seeded, so
    // warm-up differs from the real machine only in TLB/walk-cache
    // state — erased by the flush pair that opens every window).
    let (rm, _, _, heap) = build_real(&cfg);
    let heap_page = heap >> 12;
    drop(rm);
    let mut ls = legacy::Sgx::new(
        legacy::Machine::new(&cfg.mem),
        (heap, heap + 16 * PAGE_SIZE),
        cfg.eexit_cycles,
        cfg.eenter_cycles,
    );
    for p in 0..HOT_PAGES {
        ls.make_resident(heap_page + p);
    }
    for p in 0..HOT_PAGES {
        for l in 0..(PAGE_SIZE / 64) {
            ls.access(heap + p * PAGE_SIZE + l * 64, 8, AccessKind::Read);
        }
    }
    ls.mem.cycles = 0;
    ls.mem.counters = legacy::Counters::default();
    ls.arm_poll(SINK_INTERVAL);
    let mut legacy_counters = legacy::Counters::default();
    let (legacy_ns, legacy_cycles) = time_best(reps, || {
        let c0 = ls.mem.counters;
        let start = ls.mem.cycles;
        for (i, &(off, len, kind)) in stream.iter().enumerate() {
            if i % WINDOW == 0 {
                ls.transition();
            }
            ls.access(heap + off, len, kind);
        }
        legacy_counters = ls.mem.counters.delta(c0);
        ls.mem.cycles - start
    });
    assert_eq!(ls.snapshots, 0, "no snapshot may fire inside the race");
    assert!(
        legacy_counters.dtlb_misses > 0 && legacy_counters.llc_accesses > 0,
        "stream must exercise the TLB-refill and LLC-probe paths"
    );

    // Contender 2: today's per-call pipeline.
    let (mut pm, pt, pe, pheap) = build_real(&cfg);
    assert_eq!(pheap, heap, "enclave layout must be deterministic");
    let mut percall_counters = mem_sim::Counters::new();
    let (percall_ns, percall_cycles) = time_best(reps, || {
        let c0 = *pm.mem().counters();
        let f0 = pm.sgx_counters().epc_faults;
        let start = pm.mem().cycles_of(pt);
        for (i, &(off, len, kind)) in stream.iter().enumerate() {
            if i % WINDOW == 0 {
                pm.ecall_exit(pt, pe).expect("exit");
                pm.ecall_enter(pt, pe).expect("enter");
            }
            pm.access(pt, heap + off, len, kind);
        }
        assert_eq!(
            pm.sgx_counters().epc_faults,
            f0,
            "the race must stay EPC-resident (jittered fault costs would \
             break the cycle comparison)"
        );
        percall_counters = *pm.mem().counters() - c0;
        pm.mem().cycles_of(pt) - start
    });

    // Contender 3: today's batched pipeline, one ECALL window per batch.
    let (mut sm, st, se, sheap) = build_real(&cfg);
    let runs: Vec<StreamRun> = stream
        .iter()
        .map(|&(off, len, kind)| StreamRun::new(sheap + off, len, kind))
        .collect();
    let mut stream_counters = mem_sim::Counters::new();
    let (stream_ns, stream_cycles) = time_best(reps, || {
        let c0 = *sm.mem().counters();
        let f0 = sm.sgx_counters().epc_faults;
        let start = sm.mem().cycles_of(st);
        for chunk in runs.chunks(WINDOW) {
            sm.ecall_exit(st, se).expect("exit");
            sm.ecall_enter(st, se).expect("enter");
            sm.access_stream(st, chunk);
        }
        assert_eq!(sm.sgx_counters().epc_faults, f0, "resident regime");
        stream_counters = *sm.mem().counters() - c0;
        sm.mem().cycles_of(st) - start
    });

    // The race is only meaningful if all three charge identical
    // simulated cycles — the optimizations must be invisible to the
    // model. This is the hot-path analogue of the audit feature's
    // cycle-decomposition identity (which CI runs over the same paths
    // via the equivalence property tests). Counters are checked too:
    // the replica must be event-faithful, not just cycle-faithful.
    assert_eq!(
        legacy_cycles, percall_cycles,
        "legacy replica and SgxMachine::access disagree on simulated cycles"
    );
    assert_eq!(
        percall_cycles, stream_cycles,
        "SgxMachine::access and access_stream disagree on simulated cycles"
    );
    for (name, a, b, c) in [
        (
            "stlb_hits",
            legacy_counters.stlb_hits,
            percall_counters.stlb_hits,
            stream_counters.stlb_hits,
        ),
        (
            "dtlb_misses",
            legacy_counters.dtlb_misses,
            percall_counters.dtlb_misses,
            stream_counters.dtlb_misses,
        ),
        (
            "page_faults",
            legacy_counters.page_faults,
            percall_counters.page_faults,
            stream_counters.page_faults,
        ),
        (
            "walk_cycles",
            legacy_counters.walk_cycles,
            percall_counters.walk_cycles,
            stream_counters.walk_cycles,
        ),
        (
            "mem_reads",
            legacy_counters.mem_reads,
            percall_counters.mem_reads,
            stream_counters.mem_reads,
        ),
        (
            "mem_writes",
            legacy_counters.mem_writes,
            percall_counters.mem_writes,
            stream_counters.mem_writes,
        ),
        (
            "llc_accesses",
            legacy_counters.llc_accesses,
            percall_counters.llc_accesses,
            stream_counters.llc_accesses,
        ),
        (
            "llc_misses",
            legacy_counters.llc_misses,
            percall_counters.llc_misses,
            stream_counters.llc_misses,
        ),
        (
            "mee_cycles",
            legacy_counters.mee_cycles,
            percall_counters.mee_cycles,
            stream_counters.mee_cycles,
        ),
        (
            "stall_cycles",
            legacy_counters.stall_cycles,
            percall_counters.stall_cycles,
            stream_counters.stall_cycles,
        ),
        (
            "tlb_flushes",
            legacy_counters.tlb_flushes,
            percall_counters.tlb_flushes,
            stream_counters.tlb_flushes,
        ),
    ] {
        assert!(
            a == b && b == c,
            "contenders disagree on counter {name}: legacy {a}, percall {b}, stream {c}"
        );
    }

    let ns_per = |ns: u64| ns as f64 / n as f64;
    let speedup_percall = legacy_ns as f64 / percall_ns as f64;
    let speedup_stream = legacy_ns as f64 / stream_ns as f64;
    let per_sec = n as f64 / (stream_ns as f64 / 1e9);
    println!(
        "legacy  {:>8.1} ns/access\npercall {:>8.1} ns/access ({:.2}x)\nstream  {:>8.1} ns/access ({:.2}x)",
        ns_per(legacy_ns),
        ns_per(percall_ns),
        speedup_percall,
        ns_per(stream_ns),
        speedup_stream,
    );
    println!(
        "stream throughput: {:.1} M simulated accesses/sec, {:.1} sim cycles/access",
        per_sec / 1e6,
        stream_cycles as f64 / n as f64
    );

    let json = format!(
        "{{\n  \"bench\": \"hotpath\",\n  \"accesses\": {n},\n  \"smoke\": {smoke},\n  \
         \"ns_per_access_legacy\": {:.2},\n  \"ns_per_access_percall\": {:.2},\n  \
         \"ns_per_access_stream\": {:.2},\n  \"speedup_percall_vs_legacy\": {:.3},\n  \
         \"speedup_stream_vs_legacy\": {:.3},\n  \"sim_accesses_per_sec_stream\": {:.0},\n  \
         \"sim_cycles_per_access\": {:.2}\n}}\n",
        ns_per(legacy_ns),
        ns_per(percall_ns),
        ns_per(stream_ns),
        speedup_percall,
        speedup_stream,
        per_sec,
        stream_cycles as f64 / n as f64,
    );
    let out = std::env::var("SGXGAUGE_PERF_OUT")
        .map(std::path::PathBuf::from)
        .unwrap_or_else(|_| results_dir().join("BENCH_hotpath.json"));
    if let Some(dir) = out.parent() {
        let _ = std::fs::create_dir_all(dir);
    }
    match std::fs::write(&out, &json) {
        Ok(()) => println!("[json] {}", out.display()),
        Err(e) => eprintln!("[json] failed to write {}: {e}", out.display()),
    }

    // Regression gate against the committed trajectory point.
    if let Ok(baseline_path) = std::env::var("SGXGAUGE_PERF_BASELINE") {
        let blob = std::fs::read_to_string(baseline_file(&baseline_path))
            .unwrap_or_else(|e| panic!("cannot read baseline {baseline_path}: {e}"));
        let baseline = json_number(&blob, "speedup_stream_vs_legacy")
            .unwrap_or_else(|| panic!("no speedup_stream_vs_legacy in {baseline_path}"));
        // Smoke runs trade stream length for speed, so their ratio is
        // noisier even after the extra repetitions; the gate loosens a
        // notch there to keep CI deterministic while still catching any
        // real regression (losing one recovered overhead class costs
        // well over 20% of the measured gap).
        let tolerance = if smoke { 0.80 } else { 0.90 };
        println!(
            "baseline speedup {:.2}x, measured {:.2}x (gate: >= {:.0}% of baseline)",
            baseline,
            speedup_stream,
            tolerance * 100.0
        );
        assert!(
            speedup_stream >= tolerance * baseline,
            "hot-path regression: stream speedup {speedup_stream:.2}x fell below {:.0}% of the \
             committed {baseline:.2}x trajectory point",
            tolerance * 100.0
        );
    }

    assert!(
        speedup_stream >= SPEEDUP_FLOOR,
        "stream speedup {speedup_stream:.2}x is below the {SPEEDUP_FLOOR}x floor"
    );
    println!("PASS: hot path holds the {SPEEDUP_FLOOR}x trajectory floor");
}
