//! Figure 10 / Appendix E: IOzone under GrapheneSGX with and without
//! protected files.
//!
//! Paper: reading/writing 1 GB in 4 MB records, LibOS costs 33% (read)
//! and 36% (write) over Vanilla; enabling protected files pushes the
//! overhead to 98% and 95% because of the extra ECALLs/OCALLs and the
//! per-block crypto.

use sgxgauge_bench::{banner, emit, paper_env, scale};
use sgxgauge_core::report::ReportTable;
use sgxgauge_core::{ExecMode, InputSetting, Runner, RunnerConfig};
use sgxgauge_workloads::Iozone;

fn main() {
    banner(
        "Figure 10 — IOzone: LibOS (S-G) and LibOS+PF (S-P) vs Vanilla",
        "read/write overhead 33%/36% under LibOS, 98%/95% with protected files",
    );
    let wl = Iozone::scaled(scale());

    let vanilla = Runner::new(RunnerConfig {
        env: paper_env(ExecMode::Vanilla),
        repetitions: 1,
    })
    .run_once(&wl, ExecMode::Vanilla, InputSetting::Low)
    .expect("vanilla");
    let libos = Runner::new(RunnerConfig {
        env: paper_env(ExecMode::LibOs),
        repetitions: 1,
    })
    .run_once(&wl, ExecMode::LibOs, InputSetting::Low)
    .expect("libos");
    let pf = Runner::new(RunnerConfig {
        env: paper_env(ExecMode::LibOs).with_protected_files(),
        repetitions: 1,
    })
    .run_once(&wl, ExecMode::LibOs, InputSetting::Low)
    .expect("libos+pf");

    let metric = |r: &sgxgauge_core::RunReport, m: &str| r.output.metric(m).expect("metric");
    let mut table = ReportTable::new(
        "Fig 10: IOzone read/write cycles and overheads",
        &[
            "variant",
            "read_cycles",
            "write_cycles",
            "read_overhead_%",
            "write_overhead_%",
            "ocalls",
        ],
    );
    let base_r = metric(&vanilla, "read_cycles");
    let base_w = metric(&vanilla, "write_cycles");
    for (name, r) in [
        ("Vanilla", &vanilla),
        ("S-G (LibOS)", &libos),
        ("S-P (LibOS+PF)", &pf),
    ] {
        let rr = metric(r, "read_cycles");
        let ww = metric(r, "write_cycles");
        table.push_row(vec![
            name.to_string(),
            format!("{rr:.0}"),
            format!("{ww:.0}"),
            format!("{:.0}", 100.0 * (rr - base_r) / base_r),
            format!("{:.0}", 100.0 * (ww - base_w) / base_w),
            (r.sgx.ocalls + r.sgx.switchless_ocalls).to_string(),
        ]);
    }
    emit("fig10_iozone_pf", &table);

    println!(
        "Shape check: overhead ordering Vanilla < S-G < S-P must hold, with S-P several times S-G's overhead (paper: 33/36% -> 98/95%)."
    );
    println!(
        "OCALL check: PF adds metadata OCALLs — S-G {} vs S-P {} (paper Fig 10c/d: ECALL/OCALL counts rise under PF).",
        libos.sgx.ocalls, pf.sgx.ocalls
    );
}
