//! Co-tenancy trajectory: what does sharing the EPC cost?
//!
//! Two deterministic numbers pin the tenant-aware host model:
//!
//! 1. **Interleaver skew** — two tenants whose working sets *both* fit
//!    the shared EPC, run co-resident versus back-to-back on solo
//!    hosts. With zero contention the only divergence is the order in
//!    which the machine's jitter stream is consumed, so the fraction
//!    must stay near zero; a growing value means the scheduler itself
//!    started charging cycles (a wave-accounting bug, not jitter).
//!
//! 2. **Victim slowdown** — the noisy-neighbor headline: an
//!    all-resident victim's cycle bill with an EPC-thrashing antagonist
//!    co-resident, over its bill with the same neighbor idle. The
//!    shared clock hand must make this visibly worse than 1.0 (the
//!    whole point of the co-tenancy model) but it must not drift as
//!    the eviction or scheduling machinery evolves.
//!
//! Like `resilience.rs`, nothing here is wall-clock: every number is a
//! pure function of the specs, the op streams and the wave width, so
//! the committed `BENCH_cotenancy.json` point is exact and the gate can
//! be tight.
//!
//! Env knobs: `SGXGAUGE_PERF_OUT=<path>` overrides where the JSON is
//! written, `SGXGAUGE_PERF_BASELINE=<path>` arms the regression gate.

use mem_sim::PAGE_SIZE;
use sgx_sim::host::{Host, TenantId, TenantOp, TenantSpec};
use sgx_sim::SgxConfig;
use sgxgauge_bench::{banner, results_dir};
use std::path::PathBuf;

/// Measured fractions may exceed the committed trajectory point by at
/// most this factor. Both metrics are deterministic, so the headroom
/// absorbs deliberate cost-model retuning only.
const HEADROOM: f64 = 1.25;

/// Additive slack for the skew gate: the skew baseline is close to
/// zero, where a pure multiplicative bound would reject harmless
/// jitter-stream re-orderings.
const SKEW_SLACK: f64 = 0.01;

/// The victim must visibly suffer — otherwise the sweep family would be
/// plotting noise.
const SLOWDOWN_FLOOR: f64 = 1.05;

fn spec(name: &str, heap_pages: u64) -> TenantSpec {
    TenantSpec {
        name: name.to_string(),
        enclave_bytes: (heap_pages + 16) * PAGE_SIZE,
        content_bytes: 0,
        heap_bytes: heap_pages * PAGE_SIZE,
    }
}

/// A looping read/compute stream over `span_pages` of tenant heap.
fn stream(span_pages: u64, ops: u64, write: bool) -> Vec<TenantOp> {
    (0..ops)
        .flat_map(|i| {
            [
                TenantOp::Access {
                    offset: (i % span_pages) * PAGE_SIZE,
                    len: 64,
                    write,
                },
                TenantOp::Compute { cycles: 500 },
            ]
        })
        .collect()
}

fn run_host(cfg: &SgxConfig, tenants: &[(TenantSpec, Vec<TenantOp>)]) -> Vec<u64> {
    let mut b = Host::builder().sgx(cfg.clone()).wave_cycles(5_000);
    for (spec, _) in tenants {
        b = b.tenant(spec.clone());
    }
    let mut host = b.build().expect("host builds");
    for (i, (_, ops)) in tenants.iter().enumerate() {
        host.push_ops(TenantId(i), ops.iter().copied());
    }
    host.run().expect("host runs");
    if let Err(e) = host.machine().check_invariants() {
        panic!("host invariants violated: {e}");
    }
    host.tenant_reports().iter().map(|r| r.cycles).collect()
}

fn main() {
    banner(
        "Co-tenancy — interleaver skew and noisy-neighbor slowdown",
        "shared-EPC cycle attribution as exact trajectory points",
    );

    // Leg 1: interleaver skew. 64 + 64 resident pages in a 256-page
    // EPC: no contention, so co-residency may only reorder the jitter
    // stream, never add scheduler cycles.
    let roomy = SgxConfig::with_tiny_epc(256, 16);
    let a = (spec("a", 64), stream(64, 2_000, false));
    let b = (spec("b", 64), stream(64, 2_000, true));
    let solo: u64 = run_host(&roomy, std::slice::from_ref(&a))[0]
        + run_host(&roomy, std::slice::from_ref(&b))[0];
    let co: u64 = run_host(&roomy, &[a, b]).iter().sum();
    let skew = (co as f64 - solo as f64).abs() / solo as f64;
    println!("solo {solo:>12} cycles\nco   {co:>12} cycles  skew {skew:.4}");
    assert!(
        skew < 0.05,
        "uncontended co-residency must be near-free, measured skew {skew:.4}"
    );

    // Leg 2: victim slowdown. An 8-page victim against a 128-page
    // antagonist in a 64-page EPC — the antagonist's stream keeps the
    // clock hand sweeping through the victim's resident set.
    let tight = SgxConfig::with_tiny_epc(64, 4);
    let victim = || (spec("victim", 8), stream(8, 1_000, false));
    let idle = (spec("antagonist", 128), Vec::new());
    let noisy = (spec("antagonist", 128), stream(128, 1_000, true));
    let quiet_cycles = run_host(&tight, &[victim(), idle])[0];
    let noisy_cycles = run_host(&tight, &[victim(), noisy])[0];
    let slowdown = noisy_cycles as f64 / quiet_cycles as f64;
    println!(
        "victim quiet {quiet_cycles:>12} cycles\nvictim noisy {noisy_cycles:>12} cycles  \
         slowdown {slowdown:.4}x"
    );
    assert!(
        slowdown > SLOWDOWN_FLOOR,
        "the antagonist must visibly slow the victim: {slowdown:.4}x <= {SLOWDOWN_FLOOR}x"
    );

    let json = format!(
        "{{\n  \"bench\": \"cotenancy\",\n  \"solo_cycles\": {solo},\n  \
         \"cotenant_cycles\": {co},\n  \"interleave_skew_fraction\": {skew:.4},\n  \
         \"victim_quiet_cycles\": {quiet_cycles},\n  \
         \"victim_noisy_cycles\": {noisy_cycles},\n  \
         \"victim_slowdown\": {slowdown:.4}\n}}\n"
    );
    let out = std::env::var("SGXGAUGE_PERF_OUT")
        .map(PathBuf::from)
        .unwrap_or_else(|_| results_dir().join("BENCH_cotenancy.json"));
    if let Some(dir) = out.parent() {
        let _ = std::fs::create_dir_all(dir);
    }
    match std::fs::write(&out, &json) {
        Ok(()) => println!("[json] {}", out.display()),
        Err(e) => eprintln!("[json] failed to write {}: {e}", out.display()),
    }

    // Regression gate against the committed trajectory point.
    if let Ok(baseline_path) = std::env::var("SGXGAUGE_PERF_BASELINE") {
        let blob = std::fs::read_to_string(baseline_file(&baseline_path))
            .unwrap_or_else(|e| panic!("cannot read baseline {baseline_path}: {e}"));
        let base_skew = json_number(&blob, "interleave_skew_fraction")
            .unwrap_or_else(|| panic!("no interleave_skew_fraction in {baseline_path}"));
        let base_slowdown = json_number(&blob, "victim_slowdown")
            .unwrap_or_else(|| panic!("no victim_slowdown in {baseline_path}"));
        println!(
            "baseline skew {base_skew:.4} slowdown {base_slowdown:.4} \
             (gate: <= {HEADROOM:.2}x baseline)"
        );
        assert!(
            skew <= base_skew * HEADROOM + SKEW_SLACK,
            "co-tenancy regression: interleaver skew {skew:.4} exceeds \
             {HEADROOM}x the committed {base_skew:.4} point"
        );
        assert!(
            slowdown <= base_slowdown * HEADROOM,
            "co-tenancy regression: victim slowdown {slowdown:.4} exceeds \
             {HEADROOM}x the committed {base_slowdown:.4} point"
        );
    }
    println!("PASS: skew {skew:.4}, victim slowdown {slowdown:.4}x");
}

/// Pulls `"key": <number>` out of a JSON blob without a parser (the
/// suite vendors no serde; the trajectory format is flat by design).
fn json_number(blob: &str, key: &str) -> Option<f64> {
    let needle = format!("\"{key}\":");
    let at = blob.find(&needle)? + needle.len();
    let rest = blob[at..].trim_start();
    let end = rest
        .find(|c: char| !(c.is_ascii_digit() || c == '.' || c == '-' || c == 'e' || c == '+'))
        .unwrap_or(rest.len());
    rest[..end].parse().ok()
}

/// Resolves the baseline path as given, falling back to
/// workspace-root-relative (cargo runs bench binaries with the package
/// as CWD; CI names the committed file relative to the repo root).
fn baseline_file(path: &str) -> std::path::PathBuf {
    let p = std::path::PathBuf::from(path);
    if p.is_absolute() || p.exists() {
        return p;
    }
    std::path::PathBuf::from(env!("CARGO_MANIFEST_DIR"))
        .join("../..")
        .join(p)
}
