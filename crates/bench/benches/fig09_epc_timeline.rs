//! Figure 9 / Appendix D: EPC allocation/eviction/load-back timeline for
//! B-Tree in Native vs LibOS mode.
//!
//! Paper: the measurement pass evicts the (4 GB) enclave at LibOS
//! start-up; EPC pages are allocated after verification; after the
//! initialization phase the LibOS curve converges to the Native one.

use libos_sim::Manifest;
use mem_sim::{AccessKind, PAGE_SIZE};
use sgx_sim::{SgxConfig, SgxMachine};
use sgxgauge_bench::{banner, emit, fk, scale};
use sgxgauge_core::report::ReportTable;
use trace::{TimelinePoint, TraceSink};

/// Periodic-sample interval: fine enough that even a scaled-down pattern
/// yields well over 32 timeline points.
const SAMPLE_INTERVAL: u64 = 1 << 14;

/// Runs a B-Tree-like build+probe touch pattern inside `machine`'s
/// enclave heap and returns the sampled counter timeline of the
/// execution phase.
fn run_pattern(machine: &mut SgxMachine, heap: u64, pages: u64) -> Vec<TimelinePoint> {
    let t = mem_sim::ThreadId(0);
    machine
        .mem_mut()
        .set_trace_sink(TraceSink::with_config(1 << 16, SAMPLE_INTERVAL));
    // Build: sequential; probe: pseudo-random pointer chase.
    for p in 0..pages {
        machine.access(t, heap + p * PAGE_SIZE, 64, AccessKind::Write);
    }
    let mut x = 0x9e3779b97f4a7c15u64;
    for _ in 0..pages * 2 {
        x ^= x << 13;
        x ^= x >> 7;
        x ^= x << 17;
        let p = x % pages;
        machine.access(t, heap + p * PAGE_SIZE, 64, AccessKind::Read);
    }
    let sink = machine.mem_mut().take_trace_sink().expect("sink installed");
    sink.timeline()
}

fn downsample(trace: &[TimelinePoint], buckets: usize) -> Vec<TimelinePoint> {
    if trace.len() <= buckets {
        return trace.to_vec();
    }
    (0..buckets)
        .map(|i| trace[i * trace.len() / buckets])
        .collect()
}

fn main() {
    banner(
        "Figure 9 — EPC event timeline, B-Tree pattern, Native vs LibOS",
        "LibOS start-up evicts the whole enclave; execution-phase curves converge with Native",
    );
    let pages: u64 = (40 << 20) / PAGE_SIZE / scale().max(1); // ~40 MB working set

    // Native: right-sized enclave.
    let mut native = SgxMachine::new(SgxConfig::default());
    native.add_thread();
    let e = native
        .create_enclave(pages * PAGE_SIZE + (64 << 20), 4 << 20)
        .expect("enclave");
    native.ecall_enter(mem_sim::ThreadId(0), e).expect("enter");
    let heap = native
        .alloc_enclave_heap(e, pages * PAGE_SIZE)
        .expect("heap");
    let native_init = native.init_stats(e);
    native.reset_measurement();
    let native_trace = run_pattern(&mut native, heap, pages);

    // LibOS: 4 GB enclave via Graphene-like launch.
    let mut libos = SgxMachine::new(SgxConfig::default());
    let t = libos.add_thread();
    let manifest = Manifest::builder("btree").build();
    let proc_ = libos_sim::LibosProcess::launch(&mut libos, t, &manifest).expect("launch");
    proc_.enter(&mut libos, t).expect("enter");
    let startup = proc_.startup();
    let heap = proc_.alloc(&mut libos, pages * PAGE_SIZE).expect("heap");
    libos.reset_measurement();
    let libos_trace = run_pattern(&mut libos, heap, pages);

    let mut table = ReportTable::new(
        "Fig 9: execution-phase EPC events over time (32 samples per mode)",
        &[
            "mode",
            "sample",
            "cycles",
            "allocs",
            "evictions",
            "loadbacks",
        ],
    );
    for (mode, trace) in [("Native", &native_trace), ("LibOS", &libos_trace)] {
        for (i, s) in downsample(trace, 32).iter().enumerate() {
            table.push_row(vec![
                mode.to_string(),
                i.to_string(),
                s.cycles.to_string(),
                s.snap.epc_allocs.to_string(),
                s.snap.epc_evictions.to_string(),
                s.snap.epc_loadbacks.to_string(),
            ]);
        }
    }
    emit("fig09_epc_timeline", &table);

    println!(
        "Start-up (excluded above): Native build evicted {} pages; LibOS launch evicted {} pages (paper: ~1M for 4 GB).",
        fk(native_init.evictions),
        fk(startup.epc_evictions)
    );
    let n_last = native_trace.last().map(|s| s.snap.epc_allocs).unwrap_or(0);
    let l_last = libos_trace.last().map(|s| s.snap.epc_allocs).unwrap_or(0);
    println!(
        "Convergence check: execution-phase allocations Native={n_last} vs LibOS={l_last} (paper: the curves coincide after init)."
    );
}
