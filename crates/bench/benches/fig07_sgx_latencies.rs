//! Figure 7 / Appendix A: latency of the core SGX driver operations.
//!
//! Paper: `sgx_alloc_page`, `sgx_ewb`, `sgx_eldu`, `sgx_do_fault` run in
//! a few microseconds; evicting a page costs 16% more than loading one
//! back; ≈12000 cycles per EWB (§2.2); pages are evicted in batches of
//! 16 while faults load back a single page. Means over 40 K+ samples.

use mem_sim::{AccessKind, PAGE_SIZE};
use sgx_sim::{DriverOp, SgxConfig, SgxMachine};
use sgxgauge_bench::{banner, emit};
use sgxgauge_core::report::ReportTable;

fn main() {
    banner(
        "Figure 7 — latency of core SGX driver operations",
        "few-microsecond ops; EWB ~16% slower than ELDU; 40K+ samples",
    );

    // Thrash a 92 MB EPC with a 3x working set until every op has tens
    // of thousands of samples, like the paper's ftrace collection.
    let mut m = SgxMachine::new(SgxConfig::default());
    let t = m.add_thread();
    let ws_bytes: u64 = 276 << 20;
    let e = m
        .create_enclave(ws_bytes + (32 << 20), 4 << 20)
        .expect("enclave");
    m.ecall_enter(t, e).expect("enter");
    let heap = m.alloc_enclave_heap(e, ws_bytes).expect("heap");
    m.reset_measurement();
    let pages = ws_bytes / PAGE_SIZE;
    let mut sweeps = 0;
    while m.driver_stats().stats(DriverOp::Eldu).count < 40_000 {
        for p in 0..pages {
            m.access(t, heap + p * PAGE_SIZE, 8, AccessKind::Read);
        }
        sweeps += 1;
        if sweeps > 16 {
            break;
        }
    }

    let ghz = 3.8;
    let mut table = ReportTable::new(
        "Fig 7: driver-op latencies (mean over samples)",
        &[
            "operation",
            "samples",
            "mean_cycles",
            "mean_us",
            "min_us",
            "max_us",
        ],
    );
    for op in DriverOp::ALL {
        let s = m.driver_stats().stats(op);
        table.push_row(vec![
            op.to_string(),
            s.count.to_string(),
            s.mean_cycles().to_string(),
            format!("{:.2}", s.mean_micros(ghz)),
            format!("{:.2}", s.min_cycles as f64 / (ghz * 1000.0)),
            format!("{:.2}", s.max_cycles as f64 / (ghz * 1000.0)),
        ]);
    }
    emit("fig07_sgx_latencies", &table);

    let ewb = m.driver_stats().stats(DriverOp::Ewb).mean_cycles() as f64;
    let eldu = m.driver_stats().stats(DriverOp::Eldu).mean_cycles() as f64;
    println!(
        "Shape check: EWB/ELDU = {:.2} (paper: 1.16 — eviction 16% costlier than load-back); EWB ~= {:.0} cycles (paper: ~12000)",
        ewb / eldu,
        ewb
    );
}
