//! Ablation: SGX1 whole-enclave measurement vs SGX2 dynamic memory
//! (EDMM).
//!
//! Appendix D explains that SGX v1 had to load the complete enclave into
//! the EPC for measurement — the root cause of Graphene's ≈1 M start-up
//! evictions at 4 GB — while SGX v2 allows heaps beyond the EPC and
//! demand allocation. This ablation quantifies what the paper's start-up
//! observations would look like on an EDMM platform: measurement cost
//! collapses, while steady-state behaviour (which the paper measures
//! after excluding start-up) barely moves.

use libos_sim::{LibosProcess, Manifest};
use mem_sim::{AccessKind, ThreadId, PAGE_SIZE};
use sgx_sim::{SgxConfig, SgxMachine};
use sgxgauge_bench::{banner, emit, fk};
use sgxgauge_core::report::ReportTable;

fn launch(edmm: bool, enclave_size: u64) -> (libos_sim::StartupStats, u64) {
    let cfg = SgxConfig {
        sgx2_edmm: edmm,
        ..Default::default()
    };
    let mut m = SgxMachine::new(cfg);
    let t = m.add_thread();
    let manifest = Manifest::builder("app").enclave_size(enclave_size).build();
    let p = LibosProcess::launch(&mut m, t, &manifest).expect("launch");
    // Steady state: touch 64 MB of heap twice.
    p.enter(&mut m, ThreadId(0)).ok();
    let heap = p.alloc(&mut m, 64 << 20).expect("heap");
    m.reset_measurement();
    for _ in 0..2 {
        for pg in 0..(64 << 20) / PAGE_SIZE {
            m.access(t, heap + pg * PAGE_SIZE, 8, AccessKind::Read);
        }
    }
    (p.startup(), m.mem().cycles_of(t))
}

fn main() {
    banner(
        "Ablation — SGX1 measurement vs SGX2 EDMM",
        "EDMM eliminates the ~1M start-up evictions; steady state unchanged",
    );
    let mut table = ReportTable::new(
        "SGX1 vs SGX2 LibOS launch (4 GB enclave) + steady-state heap walk",
        &[
            "platform",
            "startup_evictions",
            "startup_mcycles",
            "steady_state_mcycles",
        ],
    );
    for (name, edmm) in [("SGX1 (paper)", false), ("SGX2 EDMM", true)] {
        let (s, steady) = launch(edmm, 4 << 30);
        table.push_row(vec![
            name.to_string(),
            fk(s.epc_evictions),
            (s.cycles / 1_000_000).to_string(),
            (steady / 1_000_000).to_string(),
        ]);
    }
    emit("ablation_sgx2_edmm", &table);
    println!("Shape check: start-up evictions drop by orders of magnitude under EDMM;");
    println!("steady-state cycles stay within a few percent (the paper's post-startup numbers are platform-robust).");
}
