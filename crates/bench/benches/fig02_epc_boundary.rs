//! Figure 2: crossing the EPC boundary causes an abrupt counter blow-up.
//!
//! Paper: "on crossing the EPC boundary the number of dTLB misses
//! increases by 91x, page walk cycles by more than 124x, and EPC
//! evictions by 100x as compared to when the amount of memory is less
//! than the EPC size" (§3.2.1). Baselines: Vanilla at the same input for
//! the overhead column; the Low setting for the EPC-eviction column.

use sgxgauge_bench::{banner, emit, fk, fx, paper_runner, scale};
use sgxgauge_core::report::ReportTable;
use sgxgauge_core::{ExecMode, InputSetting};
use sgxgauge_workloads::HashJoin;

fn main() {
    banner(
        "Figure 2 — stressing the EPC (HashJoin)",
        "crossing EPC: dTLB x91, walk cycles x124, EPC evictions x100 vs Low",
    );
    let wl = HashJoin::scaled(scale());
    let runner = paper_runner();

    let mut rows = Vec::new();
    for setting in InputSetting::ALL {
        let vanilla = runner
            .run_once(&wl, ExecMode::Vanilla, setting)
            .expect("vanilla run");
        let native = runner
            .run_once(&wl, ExecMode::Native, setting)
            .expect("native run");
        rows.push((setting, vanilla, native));
    }
    let low = &rows[0];

    let mut table = ReportTable::new(
        "Fig 2: HashJoin in Native mode (vs Vanilla; eviction ratio vs Low)",
        &[
            "setting",
            "overhead_vs_vanilla",
            "dtlb_miss_ratio_vs_low",
            "walk_cycle_ratio_vs_low",
            "evictions",
            "eviction_ratio_vs_low",
        ],
    );
    for (setting, vanilla, native) in &rows {
        let overhead = native.runtime_cycles as f64 / vanilla.runtime_cycles as f64;
        let dtlb = native.counters.dtlb_misses as f64 / low.2.counters.dtlb_misses.max(1) as f64;
        let walk = native.counters.walk_cycles as f64 / low.2.counters.walk_cycles.max(1) as f64;
        let ev_ratio = native.sgx.epc_evictions as f64 / low.2.sgx.epc_evictions.max(1) as f64;
        table.push_row(vec![
            setting.to_string(),
            fx(overhead),
            fx(dtlb),
            fx(walk),
            fk(native.sgx.epc_evictions),
            fx(ev_ratio),
        ]);
    }
    emit("fig02_epc_boundary", &table);

    let high_ev = rows[2].2.sgx.epc_evictions as f64 / low.2.sgx.epc_evictions.max(1) as f64;
    println!(
        "Shape check: High/Low eviction ratio = {:.1}x (paper: ~100x; any large jump across the boundary reproduces the claim)",
        high_ev
    );
}
