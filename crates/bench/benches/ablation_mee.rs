//! Ablation: Memory Encryption Engine latency.
//!
//! The MEE is the first of the paper's three overhead sources (§1): all
//! EPC-bound DRAM traffic is encrypted/integrity-checked in hardware.
//! This sweep varies the modeled MEE latency multiplier to show how much
//! of the *Low-setting* overhead (where no EPC faults occur) is memory
//! encryption — and how it is dwarfed by paging once the footprint
//! crosses the EPC.

use sgx_sim::SgxConfig;
use sgxgauge_bench::{banner, emit, fx, scale};
use sgxgauge_core::{EnvConfig, ExecMode, InputSetting, Runner, RunnerConfig};
use sgxgauge_workloads::HashJoin;

fn run(mult_x100: u64, setting: InputSetting) -> (u64, u64) {
    let mut env = EnvConfig::paper(ExecMode::Vanilla, 0);
    env.sgx = SgxConfig::default();
    env.sgx.mem.latency.mee_mult_x100 = mult_x100;
    if scale() > 1 {
        env.sgx.epc_bytes = (env.sgx.epc_bytes / scale()).max(1 << 20);
    }
    let runner = Runner::new(RunnerConfig {
        env: env.clone(),
        repetitions: 1,
    });
    let wl = HashJoin::scaled(scale());
    let native = runner
        .run_once(&wl, ExecMode::Native, setting)
        .expect("native");
    let vanilla = runner
        .run_once(&wl, ExecMode::Vanilla, setting)
        .expect("vanilla");
    (native.runtime_cycles, vanilla.runtime_cycles)
}

fn main() {
    banner(
        "Ablation — MEE latency multiplier",
        "encryption dominates sub-EPC overhead; paging dominates past the boundary",
    );
    let mut table = ReportTable::new(
        "HashJoin Native/Vanilla overhead vs MEE cost",
        &["mee_multiplier", "low_overhead", "high_overhead"],
    );
    for mult in [100u64, 200, 300, 400, 500] {
        let (ln, lv) = run(mult, InputSetting::Low);
        let (hn, hv) = run(mult, InputSetting::High);
        table.push_row(vec![
            format!("{:.1}x", mult as f64 / 100.0),
            fx(ln as f64 / lv as f64),
            fx(hn as f64 / hv as f64),
        ]);
    }
    emit("ablation_mee", &table);
    println!("Shape check: both columns scale near-linearly with the MEE multiplier —");
    println!("every LLC miss to the PRM pays it — while the High-minus-Low gap (the EPC");
    println!("paging increment) stays roughly constant. Encryption is a tax on all EPC");
    println!("traffic; the paging cliff is an *additional* cost the paper is first to stress.");
}

use sgxgauge_core::report::ReportTable;
