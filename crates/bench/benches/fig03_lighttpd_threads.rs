//! Figure 3: Lighttpd latency vs concurrent clients.
//!
//! Paper: "the latency of the Lighttpd server increases with the number
//! of concurrent accesses by up to 7x while running in SGX and compared
//! to a Vanilla (non-SGX) execution" (§3.2.2).

use sgxgauge_bench::{banner, emit, fx, paper_runner, scale};
use sgxgauge_core::report::ReportTable;
use sgxgauge_core::{ExecMode, InputSetting};
use sgxgauge_workloads::Lighttpd;

fn main() {
    banner(
        "Figure 3 — Lighttpd latency vs concurrency",
        "SGX latency grows with client threads, up to ~7x over Vanilla",
    );
    let runner = paper_runner();
    // Keep this bench light: the request count is already thread-divided.
    let divisor = scale().max(4);

    let mut table = ReportTable::new(
        "Fig 3: mean request latency (cycles), Vanilla vs LibOS(SGX)",
        &[
            "threads",
            "vanilla_latency",
            "sgx_latency",
            "sgx_over_vanilla",
        ],
    );
    let mut max_ratio: f64 = 0.0;
    for threads in [1usize, 2, 4, 8, 16] {
        let wl = Lighttpd::scaled(divisor).with_threads(threads);
        let v = runner
            .run_once(&wl, ExecMode::Vanilla, InputSetting::Low)
            .expect("vanilla");
        let s = runner
            .run_once(&wl, ExecMode::LibOs, InputSetting::Low)
            .expect("libos");
        let vl = v.output.metric("mean_latency_cycles").expect("metric");
        let sl = s.output.metric("mean_latency_cycles").expect("metric");
        let ratio = sl / vl;
        max_ratio = max_ratio.max(ratio);
        table.push_row(vec![
            threads.to_string(),
            format!("{vl:.0}"),
            format!("{sl:.0}"),
            fx(ratio),
        ]);
    }
    emit("fig03_lighttpd_threads", &table);
    println!("Shape check: max SGX/Vanilla latency ratio = {max_ratio:.1}x (paper: up to 7x), and it grows with thread count");
}
