//! Criterion micro-benchmarks of the simulator's hot paths.
//!
//! These measure the *reproduction's* own performance (host nanoseconds
//! per simulated event), not paper metrics: they exist so regressions in
//! the access path — which every workload hammers millions of times —
//! are caught.

use criterion::{criterion_group, criterion_main, Criterion};
use mem_sim::{AccessAttrs, AccessKind, Machine, MachineConfig, PAGE_SIZE};
use sgx_sim::{SgxConfig, SgxMachine};
use std::hint::black_box;

fn bench_mem_access(c: &mut Criterion) {
    let mut m = Machine::new(MachineConfig::default());
    let t = m.add_thread();
    // Warm a 1 MB buffer.
    for p in 0..256u64 {
        m.access(t, p * PAGE_SIZE, 8, AccessKind::Write, &AccessAttrs::PLAIN);
    }
    let mut addr = 0u64;
    c.bench_function("mem_access_warm_8B", |b| {
        b.iter(|| {
            addr = (addr + 4096) % (256 * PAGE_SIZE);
            black_box(m.access(t, addr, 8, AccessKind::Read, &AccessAttrs::PLAIN));
        })
    });
}

fn bench_epc_fault_path(c: &mut Criterion) {
    let mut m = SgxMachine::new(SgxConfig::with_tiny_epc(1024, 16));
    let t = m.add_thread();
    let e = m.create_enclave(64 << 20, 1 << 20).expect("enclave");
    m.ecall_enter(t, e).expect("enter");
    let heap = m.alloc_enclave_heap(e, 32 << 20).expect("heap");
    let pages = (32 << 20) / PAGE_SIZE;
    let mut p = 0u64;
    c.bench_function("epc_fault_thrash", |b| {
        b.iter(|| {
            // Sweeping 8x the EPC guarantees every access faults.
            p = (p + 1) % pages;
            black_box(m.access(t, heap + p * PAGE_SIZE, 8, AccessKind::Read));
        })
    });
}

fn bench_transitions(c: &mut Criterion) {
    let mut m = SgxMachine::new(SgxConfig::default());
    let t = m.add_thread();
    let e = m.create_enclave(32 << 20, 1 << 20).expect("enclave");
    c.bench_function("ecall_roundtrip", |b| {
        b.iter(|| {
            m.ecall_enter(t, e).expect("enter");
            m.ecall_exit(t, e).expect("exit");
        })
    });
    m.ecall_enter(t, e).expect("enter");
    c.bench_function("ocall", |b| b.iter(|| m.ocall(t, 1_000).expect("ocall")));
}

fn bench_crypto(c: &mut Criterion) {
    let data = vec![0xa5u8; 4096];
    c.bench_function("sha256_4k", |b| {
        b.iter(|| black_box(sgx_crypto::Sha256::digest(black_box(&data))))
    });
    let key = [7u8; 32];
    let nonce = [9u8; 12];
    let mut buf = vec![0u8; 4096];
    c.bench_function("chacha20_4k", |b| {
        b.iter(|| sgx_crypto::ChaCha20::new(&key, &nonce).apply(black_box(&mut buf), 0))
    });
}

criterion_group! {
    name = benches;
    config = Criterion::default().sample_size(20).measurement_time(std::time::Duration::from_secs(2)).warm_up_time(std::time::Duration::from_millis(500));
    targets = bench_mem_access, bench_epc_fault_path, bench_transitions, bench_crypto
}
criterion_main!(benches);
