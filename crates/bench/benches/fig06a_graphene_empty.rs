//! Figure 6a: GrapheneSGX's own cost, measured with an "empty" workload.
//!
//! Paper (§5.4.1): an empty (`return 0;`) program under GrapheneSGX
//! performs ≈300 ECALLs, ≈1000 OCALLs and ≈1000 AEX exits; because the
//! 4 GB enclave is fully loaded into the EPC for measurement, ≈1 M pages
//! are evicted at start-up, of which only ≈700 (2 MB) are loaded back.

use libos_sim::{LibosProcess, Manifest};
use sgx_sim::{SgxConfig, SgxMachine};
use sgxgauge_bench::{banner, emit, fk};
use sgxgauge_core::report::ReportTable;

fn run_empty(enclave_size: u64) -> (libos_sim::StartupStats, u64) {
    let mut machine = SgxMachine::new(SgxConfig::default());
    let tid = machine.add_thread();
    let manifest = Manifest::builder("empty")
        .enclave_size(enclave_size)
        .build();
    let start = std::time::Instant::now();
    let p = LibosProcess::launch(&mut machine, tid, &manifest).expect("launch");
    let wall_us = start.elapsed().as_micros() as u64;
    (p.startup(), wall_us)
}

fn main() {
    banner(
        "Figure 6a — GrapheneSGX statistics for an empty workload",
        "~300 ECALLs, ~1000 OCALLs, ~1000 AEX, ~1M EPC evictions, ~700 loadbacks",
    );

    let mut table = ReportTable::new(
        "Fig 6a: LibOS start-up events by enclave size",
        &[
            "enclave_size",
            "ecalls",
            "ocalls",
            "aex_exits",
            "epc_evictions",
            "epc_loadbacks",
            "startup_mcycles",
        ],
    );
    for (label, size) in [
        ("1 GB", 1u64 << 30),
        ("2 GB", 2 << 30),
        ("4 GB (paper)", 4 << 30),
    ] {
        let (s, _) = run_empty(size);
        table.push_row(vec![
            label.to_string(),
            s.ecalls.to_string(),
            s.ocalls.to_string(),
            s.aex_exits.to_string(),
            fk(s.epc_evictions),
            s.epc_loadbacks.to_string(),
            (s.cycles / 1_000_000).to_string(),
        ]);
    }
    emit("fig06a_graphene_empty", &table);

    let (paper, _) = run_empty(4 << 30);
    println!(
        "Shape check: 4 GB enclave => {} evictions (paper ~1M since 1M * 4KB = 4GB), {} loaded back (paper ~700).",
        fk(paper.epc_evictions),
        paper.epc_loadbacks
    );
}
