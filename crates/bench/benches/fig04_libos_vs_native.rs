//! Figure 4: a library OS can help or hurt, depending on the workload.
//!
//! Paper: "a library operating system may affect the performance of an
//! application in a positive or negative manner, depending on the
//! characteristics of the application" (§3.2.3); overall LibOS ≈ Native
//! within ±10% (abstract).

use sgxgauge_bench::{banner, emit, expect_report, fx, run_grid, scale};
use sgxgauge_core::report::ReportTable;
use sgxgauge_core::{ExecMode, InputSetting};
use sgxgauge_workloads::native_suite;

fn main() {
    banner(
        "Figure 4 — LibOS vs Native per workload",
        "LibOS impact is workload-dependent, overall within ~±10% of Native",
    );
    let divisor = scale();
    let suite = if divisor == 1 {
        native_suite()
    } else {
        sgxgauge_workloads::suite_scaled(divisor)
            .into_iter()
            .filter(|w| w.supports(ExecMode::Native))
            .collect()
    };
    let sweep = run_grid(
        &suite,
        &[ExecMode::Native, ExecMode::LibOs],
        &[InputSetting::High],
    );

    let mut table = ReportTable::new(
        "Fig 4: LibOS/Native runtime ratio (High setting)",
        &[
            "workload",
            "native_cycles",
            "libos_cycles",
            "libos_over_native",
        ],
    );
    let mut ratios = Vec::new();
    for (wi, wl) in suite.iter().enumerate() {
        let n = expect_report(&sweep, wi, ExecMode::Native, InputSetting::High);
        let l = expect_report(&sweep, wi, ExecMode::LibOs, InputSetting::High);
        let ratio = l.runtime_cycles as f64 / n.runtime_cycles as f64;
        ratios.push(ratio);
        table.push_row(vec![
            wl.name().to_string(),
            n.runtime_cycles.to_string(),
            l.runtime_cycles.to_string(),
            fx(ratio),
        ]);
    }
    emit("fig04_libos_vs_native", &table);

    let gm = gauge_stats::geomean(&ratios);
    println!("Shape check: geomean LibOS/Native = {gm:.2}x (paper: ~1.0 +- 0.1)");
    let spread = ratios.iter().cloned().fold(f64::MIN, f64::max)
        - ratios.iter().cloned().fold(f64::MAX, f64::min);
    println!("Per-workload spread = {spread:.2} (paper: both positive and negative impacts occur)");
}
