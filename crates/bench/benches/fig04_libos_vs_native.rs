//! Figure 4: a library OS can help or hurt, depending on the workload.
//!
//! Paper: "a library operating system may affect the performance of an
//! application in a positive or negative manner, depending on the
//! characteristics of the application" (§3.2.3); overall LibOS ≈ Native
//! within ±10% (abstract).

use sgxgauge_bench::{banner, emit, fx, paper_runner, scale};
use sgxgauge_core::report::ReportTable;
use sgxgauge_core::{ExecMode, InputSetting};
use sgxgauge_workloads::native_suite;

fn main() {
    banner(
        "Figure 4 — LibOS vs Native per workload",
        "LibOS impact is workload-dependent, overall within ~±10% of Native",
    );
    let runner = paper_runner();
    let divisor = scale();
    let suite = if divisor == 1 {
        native_suite()
    } else {
        sgxgauge_workloads::suite_scaled(divisor)
            .into_iter()
            .filter(|w| w.supports(ExecMode::Native))
            .collect()
    };

    let mut table = ReportTable::new(
        "Fig 4: LibOS/Native runtime ratio (High setting)",
        &["workload", "native_cycles", "libos_cycles", "libos_over_native"],
    );
    let mut ratios = Vec::new();
    for wl in &suite {
        let n = runner.run_once(wl.as_ref(), ExecMode::Native, InputSetting::High).expect("native");
        let l = runner.run_once(wl.as_ref(), ExecMode::LibOs, InputSetting::High).expect("libos");
        let ratio = l.runtime_cycles as f64 / n.runtime_cycles as f64;
        ratios.push(ratio);
        table.push_row(vec![
            wl.name().to_string(),
            n.runtime_cycles.to_string(),
            l.runtime_cycles.to_string(),
            fx(ratio),
        ]);
    }
    emit("fig04_libos_vs_native", &table);

    let gm = gauge_stats::geomean(&ratios);
    println!("Shape check: geomean LibOS/Native = {gm:.2}x (paper: ~1.0 +- 0.1)");
    let spread = ratios.iter().cloned().fold(f64::MIN, f64::max)
        - ratios.iter().cloned().fold(f64::MAX, f64::min);
    println!("Per-workload spread = {spread:.2} (paper: both positive and negative impacts occur)");
}
