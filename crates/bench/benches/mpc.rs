//! MPC trajectory: what does the network fault plane cost the
//! threshold-signing protocol?
//!
//! Two deterministic numbers pin the relay's resilience layer:
//!
//! 1. **Round-latency amplification** — the mean signing-round latency
//!    on a heavily lossy network (`drop=500`: half of all messages
//!    eaten) over the clean-network mean. Losing that many shares
//!    forces the pull-retry machinery through its doubling backoff, so
//!    rounds must get visibly slower — but boundedly: a spiralling
//!    value means retries are re-triggering instead of converging.
//!
//! 2. **Storm survival overhead** — total protocol cycles under the
//!    acceptance storm (`drop=50,partykill=2@100000:500000`) over the
//!    clean run's, with survival pinned at 1000‰ and exactly one
//!    suspect/recover pair. The ratio sits slightly *below* 1.0 — a
//!    dead party skips its broadcasts — and the gate keeps the
//!    resilience machinery (detection, rejoin catch-up, retries) from
//!    quietly inflating it as the protocol evolves.
//!
//! Like `resilience.rs` and `cotenancy.rs`, nothing here is wall-clock:
//! both ratios are pure functions of the fault plan and the cost model,
//! so the committed `BENCH_mpc.json` point is exact and the gate can be
//! tight.
//!
//! Env knobs: `SGXGAUGE_PERF_OUT=<path>` overrides where the JSON is
//! written, `SGXGAUGE_PERF_BASELINE=<path>` arms the regression gate.

use faults::NetFaultPlan;
use relay::{run_mpc, MpcConfig};
use sgxgauge_bench::{banner, results_dir};
use std::path::PathBuf;

/// Measured ratios may exceed the committed trajectory point by at most
/// this factor. Both are deterministic, so the headroom absorbs
/// deliberate cost-model retuning only.
const HEADROOM: f64 = 1.25;

/// The lossy network must visibly slow rounds — otherwise the bench
/// would be gating noise, not the retry machinery.
const AMPLIFICATION_FLOOR: f64 = 1.05;

fn main() {
    banner(
        "MPC — round-latency amplification and storm survival overhead",
        "threshold signing under the network fault plane as exact trajectory points",
    );

    let shape = || MpcConfig::new(5, 3).rounds(8);
    let clean = run_mpc(&shape(), 1).expect("clean network holds quorum");
    let lossy_plan = NetFaultPlan::parse("drop=500").expect("lossy plan parses");
    let lossy = run_mpc(&shape().net(lossy_plan), 1).expect("3-of-5 quorum survives the loss");
    let storm_plan =
        NetFaultPlan::parse("drop=50,partykill=2@100000:500000").expect("storm plan parses");
    let storm = run_mpc(&shape().net(storm_plan), 1).expect("3-of-5 quorum survives the storm");

    for (name, report) in [("clean", &clean), ("lossy", &lossy), ("storm", &storm)] {
        assert_eq!(
            report.survival_permille(),
            1000,
            "graceful degradation: the {name} run may slow rounds, never lose them"
        );
    }
    assert!(
        lossy.rounds.iter().map(|s| s.retries).sum::<u32>() > 0,
        "half the messages lost must force pull-retries"
    );
    assert_eq!(
        storm.suspect_events(),
        1,
        "the kill window must surface as exactly one suspicion"
    );
    assert_eq!(
        storm.recover_events(),
        1,
        "and the killed party must rejoin"
    );

    let clean_latency = clean.mean_round_latency();
    let lossy_latency = lossy.mean_round_latency();
    let amplification = lossy_latency as f64 / clean_latency.max(1) as f64;
    let overhead = storm.total_cycles as f64 / clean.total_cycles.max(1) as f64;
    println!(
        "clean mean round {clean_latency:>9} cycles  total {:>10}\n\
         lossy mean round {lossy_latency:>9} cycles  amplification {amplification:.4}x\n\
         storm total {:>10} cycles  overhead {overhead:.4}x",
        clean.total_cycles, storm.total_cycles
    );
    assert!(
        amplification > AMPLIFICATION_FLOOR,
        "the lossy network must visibly slow rounds: \
         {amplification:.4}x <= {AMPLIFICATION_FLOOR}x"
    );

    let json = format!(
        "{{\n  \"bench\": \"mpc\",\n  \"clean_mean_round_latency\": {clean_latency},\n  \
         \"lossy_mean_round_latency\": {lossy_latency},\n  \
         \"latency_amplification\": {amplification:.4},\n  \
         \"clean_total_cycles\": {},\n  \"storm_total_cycles\": {},\n  \
         \"storm_overhead\": {overhead:.4},\n  \"survival_permille\": 1000\n}}\n",
        clean.total_cycles, storm.total_cycles
    );
    let out = std::env::var("SGXGAUGE_PERF_OUT")
        .map(PathBuf::from)
        .unwrap_or_else(|_| results_dir().join("BENCH_mpc.json"));
    if let Some(dir) = out.parent() {
        let _ = std::fs::create_dir_all(dir);
    }
    match std::fs::write(&out, &json) {
        Ok(()) => println!("[json] {}", out.display()),
        Err(e) => eprintln!("[json] failed to write {}: {e}", out.display()),
    }

    // Regression gate against the committed trajectory point.
    if let Ok(baseline_path) = std::env::var("SGXGAUGE_PERF_BASELINE") {
        let blob = std::fs::read_to_string(baseline_file(&baseline_path))
            .unwrap_or_else(|e| panic!("cannot read baseline {baseline_path}: {e}"));
        let base_amplification = json_number(&blob, "latency_amplification")
            .unwrap_or_else(|| panic!("no latency_amplification in {baseline_path}"));
        let base_overhead = json_number(&blob, "storm_overhead")
            .unwrap_or_else(|| panic!("no storm_overhead in {baseline_path}"));
        println!(
            "baseline amplification {base_amplification:.4} overhead {base_overhead:.4} \
             (gate: <= {HEADROOM:.2}x baseline)"
        );
        assert!(
            amplification <= base_amplification * HEADROOM,
            "mpc regression: latency amplification {amplification:.4} exceeds \
             {HEADROOM}x the committed {base_amplification:.4} point"
        );
        assert!(
            overhead <= base_overhead * HEADROOM,
            "mpc regression: storm overhead {overhead:.4} exceeds \
             {HEADROOM}x the committed {base_overhead:.4} point"
        );
    }
    println!("PASS: amplification {amplification:.4}x, overhead {overhead:.4}x");
}

/// Pulls `"key": <number>` out of a JSON blob without a parser (the
/// suite vendors no serde; the trajectory format is flat by design).
fn json_number(blob: &str, key: &str) -> Option<f64> {
    let needle = format!("\"{key}\":");
    let at = blob.find(&needle)? + needle.len();
    let rest = blob[at..].trim_start();
    let end = rest
        .find(|c: char| !(c.is_ascii_digit() || c == '.' || c == '-' || c == 'e' || c == '+'))
        .unwrap_or(rest.len());
    rest[..end].parse().ok()
}

/// Resolves the baseline path as given, falling back to
/// workspace-root-relative (cargo runs bench binaries with the package
/// as CWD; CI names the committed file relative to the repo root).
fn baseline_file(path: &str) -> std::path::PathBuf {
    let p = std::path::PathBuf::from(path);
    if p.is_absolute() || p.exists() {
        return p;
    }
    std::path::PathBuf::from(env!("CARGO_MANIFEST_DIR"))
        .join("../..")
        .join(p)
}
