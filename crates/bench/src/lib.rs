//! Shared plumbing for the figure/table reproduction benches.
//!
//! Every bench target in `benches/` regenerates one table or figure of
//! the SGXGauge paper: it runs the relevant workloads through the
//! [`sgxgauge_core::Runner`], prints the paper-style rows, and writes a
//! CSV under `target/gauge-results/`. Absolute cycle counts are from the
//! simulator, not the authors' Xeon — the claims under reproduction are
//! the *shapes* (who wins, where the EPC cliff falls, how LibOS compares
//! to Native).
//!
//! Scale: set `SGXGAUGE_SCALE=<divisor>` to shrink every input by that
//! factor for a smoke run. The default (`1`) is paper scale. The
//! quick-test EPC is only used by unit tests, never here: benches always
//! run against the 92 MB EPC platform of Table 3.

#![forbid(unsafe_code)]
#![deny(missing_docs)]

use sgxgauge_core::report::ReportTable;
use sgxgauge_core::sweep::SweepReport;
use sgxgauge_core::{
    EnvConfig, ExecMode, InputSetting, RunReport, Runner, RunnerConfig, SuiteRunner, Workload,
};
use std::path::PathBuf;

/// The input-scale divisor, from `SGXGAUGE_SCALE` (default 1).
pub fn scale() -> u64 {
    std::env::var("SGXGAUGE_SCALE")
        .ok()
        .and_then(|s| s.parse().ok())
        .filter(|&d| d >= 1)
        .unwrap_or(1)
}

/// Directory the CSV artifacts land in: `<target>/gauge-results` of the
/// workspace (bench binaries run with their package as CWD, so the
/// workspace root is resolved relative to this crate's manifest).
pub fn results_dir() -> PathBuf {
    if let Ok(dir) = std::env::var("CARGO_TARGET_DIR") {
        return PathBuf::from(dir).join("gauge-results");
    }
    PathBuf::from(env!("CARGO_MANIFEST_DIR"))
        .join("../../target")
        .join("gauge-results")
}

/// A paper-faithful runner (92 MB EPC, 4 GB LibOS enclaves, 1 rep —
/// the simulator is deterministic, so repetitions only matter when a
/// bench wants run-to-run structure).
///
/// Under `SGXGAUGE_SCALE=d` (smoke runs) the *platform* shrinks by the
/// same divisor as the workloads — EPC and LibOS enclave size — so the
/// Low/Medium/High settings keep their position relative to the EPC
/// boundary and every figure keeps its shape.
pub fn paper_runner() -> Runner {
    Runner::new(RunnerConfig {
        env: paper_env(ExecMode::Vanilla),
        repetitions: 1,
    })
}

/// The environment template behind [`paper_runner`], for benches that
/// need mode-specific variants (switchless, protected files).
pub fn paper_env(mode: ExecMode) -> EnvConfig {
    let d = scale();
    let mut env = EnvConfig::paper(mode, 0);
    if d > 1 {
        env.sgx.epc_bytes = (env.sgx.epc_bytes / d).max(1 << 20);
        let enclave = ((4u64 << 30) / d).max(libos_sim::manifest::MIN_ENCLAVE_BYTES.max(128 << 20));
        let internal = ((64u64 << 20) / d).max(1 << 20);
        env.manifest = Some(
            libos_sim::Manifest::builder("workload")
                .enclave_size(enclave)
                .internal_memory(internal)
                .build(),
        );
    }
    env
}

/// A paper-faithful [`SuiteRunner`] over `modes` × `settings`: the
/// parallel analogue of [`paper_runner`], one worker per core.
pub fn paper_sweep(modes: &[ExecMode], settings: &[InputSetting]) -> SuiteRunner {
    SuiteRunner::new(RunnerConfig {
        env: paper_env(ExecMode::Vanilla),
        repetitions: 1,
    })
    .modes(modes)
    .settings(settings)
}

/// Fans `workloads` × `modes` × `settings` across OS threads and returns
/// the grid-ordered sweep. Figure harnesses use this instead of nested
/// `run_once` loops: the results are identical (each cell still owns a
/// private simulator), only the wall clock shrinks.
pub fn run_grid(
    workloads: &[Box<dyn Workload>],
    modes: &[ExecMode],
    settings: &[InputSetting],
) -> SweepReport {
    let refs: Vec<&dyn Workload> = workloads.iter().map(|w| w.as_ref()).collect();
    paper_sweep(modes, settings).run(&refs)
}

/// The report of grid cell (`workload` index, `mode`, `setting`), first
/// repetition.
///
/// # Panics
///
/// Panics with the cell's error when the run failed or the cell is not in
/// the sweep — figure harnesses treat missing data as fatal.
pub fn expect_report(
    sweep: &SweepReport,
    workload: usize,
    mode: ExecMode,
    setting: InputSetting,
) -> &RunReport {
    let cell = sweep
        .cells
        .iter()
        .find(|c| {
            c.cell.workload == workload
                && c.cell.mode == mode
                && c.cell.setting == setting
                && c.cell.rep == 0
        })
        .unwrap_or_else(|| panic!("cell ({workload}, {mode}, {setting}) not in sweep"));
    match &cell.result {
        Ok(r) => r,
        Err(e) => panic!("{} in {mode} at {setting}: {e}", cell.workload),
    }
}

/// Prints the bench banner.
pub fn banner(id: &str, paper_claim: &str) {
    println!();
    println!("================================================================");
    println!("SGXGauge reproduction :: {id}");
    println!("Paper claim: {paper_claim}");
    println!("Scale divisor: {} (SGXGAUGE_SCALE)", scale());
    println!("================================================================");
}

/// Prints a table and writes its CSV; the file name is `<id>.csv`.
pub fn emit(id: &str, table: &ReportTable) {
    println!("{table}");
    let path = results_dir().join(format!("{id}.csv"));
    match table.write_csv(&path) {
        Ok(()) => println!("[csv] {}", path.display()),
        Err(e) => eprintln!("[csv] failed to write {}: {e}", path.display()),
    }
}

/// Formats a ratio like the paper ("2.0x").
pub fn fx(v: f64) -> String {
    format!("{v:.2}x")
}

/// Formats a count like the paper ("21.5 K").
pub fn fk(v: u64) -> String {
    sgxgauge_core::report::humanize(v)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn scale_defaults_to_one() {
        std::env::remove_var("SGXGAUGE_SCALE");
        assert_eq!(scale(), 1);
    }

    #[test]
    fn formatting_helpers() {
        assert_eq!(fx(2.0), "2.00x");
        assert_eq!(fk(21_500), "21.5 K");
    }
}
