//! The crash-safe artifact plane: injectable host I/O, integrity
//! footers, and a recovery journal.
//!
//! Everything the harness publishes — report CSVs, checkpoint JSON,
//! trace JSONL — now flows through the [`ArtifactIo`] trait instead of
//! calling `std::fs` directly. Two backends exist:
//!
//! * [`RealFs`] — the only `std::fs` user in this crate. Writes are
//!   durable (file fsync before the publishing rename, parent-directory
//!   fsync after), so a host crash cannot publish a truncated artifact.
//! * [`ChaosFs`] — a deterministic fault-injecting wrapper compiled from
//!   a seeded [`faults::IoFaultPlan`]. It injects ENOSPC, transient EIO,
//!   silent torn writes, and a crash-at-rename after which the "process"
//!   is dead and every operation fails. The same plan and seed produce
//!   the same fault stream on every run, which is what makes the chaos
//!   matrix in `tests/io_chaos.rs` reproducible.
//!
//! On top of the trait sit the integrity and recovery primitives:
//! a hand-rolled [`crc32`], [`seal`]/[`unseal`] footers
//! (`#sgxgauge-integrity v1 crc32=…`), the intent → publish → commit
//! [`Journal`], and [`recover`], which scans a journal at startup,
//! completes interrupted publishes whose temp sibling verifies, and
//! quarantines torn state for inspection instead of silently loading it.
//!
//! Failures are typed ([`ArtifactError`] / [`IoErrorKind`]) rather than
//! stringly `Result<_, String>`, so callers can distinguish a retryable
//! transient fault from corruption or a dead filesystem.

use std::collections::BTreeMap;
use std::io::Write as _;
use std::path::{Path, PathBuf};
use std::sync::Mutex;

use faults::{IoFaultPlan, XorShift64};

/// The class of a host-I/O failure, used to decide retry vs. abort.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum IoErrorKind {
    /// The device is full (ENOSPC); retrying cannot help.
    NoSpace,
    /// A transient fault (EIO, interrupted syscall); retrying may help.
    Transient,
    /// Only a prefix of the data landed; the write must be redone.
    Torn,
    /// The harness crashed at a rename; the backend is permanently dead.
    CrashRename,
    /// The path does not exist.
    NotFound,
    /// Any other host error.
    Other,
}

impl std::fmt::Display for IoErrorKind {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(match self {
            IoErrorKind::NoSpace => "no-space",
            IoErrorKind::Transient => "transient",
            IoErrorKind::Torn => "torn",
            IoErrorKind::CrashRename => "crash-rename",
            IoErrorKind::NotFound => "not-found",
            IoErrorKind::Other => "other",
        })
    }
}

/// A typed artifact-plane failure, replacing the stringly
/// `Result<_, String>` the emit and checkpoint paths used to return.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ArtifactError {
    /// A host-I/O operation failed.
    Io {
        /// The operation that failed (`read`, `write`, `rename`, …).
        op: &'static str,
        /// The path the operation targeted.
        path: PathBuf,
        /// The failure class (drives retry policy).
        kind: IoErrorKind,
        /// The backend's human-readable detail.
        message: String,
    },
    /// An integrity footer did not match the artifact body.
    Corrupt {
        /// The artifact whose checksum failed.
        path: PathBuf,
        /// The CRC32 recorded in the footer.
        expected: u32,
        /// The CRC32 computed over the body actually on disk.
        found: u32,
    },
    /// The artifact text is structurally malformed (bad footer, bad
    /// JSON, unknown version).
    Format {
        /// The artifact that failed to parse.
        path: PathBuf,
        /// What was wrong with it.
        message: String,
    },
    /// The artifact is well-formed but belongs to a different run
    /// (e.g. a checkpoint whose grid fingerprint does not match).
    Mismatch {
        /// The artifact that was rejected.
        path: PathBuf,
        /// Why it does not belong to this run.
        message: String,
    },
}

impl ArtifactError {
    /// Shorthand constructor for [`ArtifactError::Io`].
    pub fn io(
        op: &'static str,
        path: &Path,
        kind: IoErrorKind,
        message: impl Into<String>,
    ) -> Self {
        ArtifactError::Io {
            op,
            path: path.to_path_buf(),
            kind,
            message: message.into(),
        }
    }

    /// Whether retrying the failed operation could plausibly succeed
    /// (transient EIO and torn writes are retryable; ENOSPC, crashes,
    /// corruption and format errors are not).
    pub fn is_transient(&self) -> bool {
        matches!(
            self,
            ArtifactError::Io {
                kind: IoErrorKind::Transient | IoErrorKind::Torn,
                ..
            }
        )
    }
}

impl std::fmt::Display for ArtifactError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ArtifactError::Io {
                op,
                path,
                kind,
                message,
            } => write!(f, "{op} {} failed ({kind}): {message}", path.display()),
            ArtifactError::Corrupt {
                path,
                expected,
                found,
            } => write!(
                f,
                "{} is corrupt: integrity footer records crc32={expected:08x} \
                 but the body hashes to {found:08x}",
                path.display()
            ),
            ArtifactError::Format { path, message } => {
                write!(f, "{} is malformed: {message}", path.display())
            }
            ArtifactError::Mismatch { path, message } => {
                write!(f, "{} rejected: {message}", path.display())
            }
        }
    }
}

impl std::error::Error for ArtifactError {}

/// The host-I/O surface every artifact write goes through.
///
/// Keeping this a trait is what makes the artifact plane injectable:
/// production code holds a `&dyn ArtifactIo`, tests and the chaos
/// matrix swap in [`ChaosFs`] without touching any call site.
pub trait ArtifactIo: Send + Sync {
    /// Reads the whole file as UTF-8 text.
    fn read(&self, path: &Path) -> Result<String, ArtifactError>;
    /// Writes the whole file durably (contents on stable storage before
    /// return).
    fn write(&self, path: &Path, contents: &str) -> Result<(), ArtifactError>;
    /// Appends to the file durably, creating it if absent.
    fn append(&self, path: &Path, contents: &str) -> Result<(), ArtifactError>;
    /// Atomically replaces `to` with `from`.
    fn rename(&self, from: &Path, to: &Path) -> Result<(), ArtifactError>;
    /// Flushes directory metadata (the published name) to stable
    /// storage. Best-effort on platforms without directory fsync.
    fn sync_dir(&self, dir: &Path) -> Result<(), ArtifactError>;
    /// Removes the file if it exists (absence is not an error).
    fn remove(&self, path: &Path) -> Result<(), ArtifactError>;
    /// Whether the path exists.
    fn exists(&self, path: &Path) -> bool;
    /// Lists the entries of a directory.
    fn list(&self, dir: &Path) -> Result<Vec<PathBuf>, ArtifactError>;
    /// Creates the directory and all missing parents.
    fn create_dir_all(&self, dir: &Path) -> Result<(), ArtifactError>;
}

fn kind_of(e: &std::io::Error) -> IoErrorKind {
    match e.kind() {
        std::io::ErrorKind::NotFound => IoErrorKind::NotFound,
        std::io::ErrorKind::Interrupted | std::io::ErrorKind::WouldBlock => IoErrorKind::Transient,
        _ => {
            // `StorageFull` is still unstable in some toolchains; match
            // the raw errno where available.
            if e.raw_os_error() == Some(28) {
                IoErrorKind::NoSpace
            } else {
                IoErrorKind::Other
            }
        }
    }
}

/// The real filesystem backend — the single place in this crate allowed
/// to call `std::fs` write APIs (enforced by the `fs-write` model-lint).
#[derive(Debug, Clone, Copy, Default)]
pub struct RealFs;

impl ArtifactIo for RealFs {
    fn read(&self, path: &Path) -> Result<String, ArtifactError> {
        std::fs::read_to_string(path)
            .map_err(|e| ArtifactError::io("read", path, kind_of(&e), e.to_string()))
    }

    fn write(&self, path: &Path, contents: &str) -> Result<(), ArtifactError> {
        let mut f = std::fs::File::create(path)
            .map_err(|e| ArtifactError::io("create", path, kind_of(&e), e.to_string()))?;
        f.write_all(contents.as_bytes())
            .map_err(|e| ArtifactError::io("write", path, kind_of(&e), e.to_string()))?;
        f.sync_all()
            .map_err(|e| ArtifactError::io("fsync", path, kind_of(&e), e.to_string()))
    }

    fn append(&self, path: &Path, contents: &str) -> Result<(), ArtifactError> {
        let mut f = std::fs::File::options()
            .create(true)
            .append(true)
            .open(path)
            .map_err(|e| ArtifactError::io("open-append", path, kind_of(&e), e.to_string()))?;
        f.write_all(contents.as_bytes())
            .map_err(|e| ArtifactError::io("append", path, kind_of(&e), e.to_string()))?;
        f.sync_all()
            .map_err(|e| ArtifactError::io("fsync", path, kind_of(&e), e.to_string()))
    }

    fn rename(&self, from: &Path, to: &Path) -> Result<(), ArtifactError> {
        std::fs::rename(from, to)
            .map_err(|e| ArtifactError::io("rename", to, kind_of(&e), e.to_string()))
    }

    fn sync_dir(&self, dir: &Path) -> Result<(), ArtifactError> {
        #[cfg(unix)]
        {
            if let Ok(d) = std::fs::File::open(dir) {
                d.sync_all()
                    .map_err(|e| ArtifactError::io("fsync-dir", dir, kind_of(&e), e.to_string()))?;
            }
        }
        let _ = dir;
        Ok(())
    }

    fn remove(&self, path: &Path) -> Result<(), ArtifactError> {
        match std::fs::remove_file(path) {
            Ok(()) => Ok(()),
            Err(e) if e.kind() == std::io::ErrorKind::NotFound => Ok(()),
            Err(e) => Err(ArtifactError::io(
                "remove",
                path,
                kind_of(&e),
                e.to_string(),
            )),
        }
    }

    fn exists(&self, path: &Path) -> bool {
        path.exists()
    }

    fn list(&self, dir: &Path) -> Result<Vec<PathBuf>, ArtifactError> {
        let rd = std::fs::read_dir(dir)
            .map_err(|e| ArtifactError::io("list", dir, kind_of(&e), e.to_string()))?;
        let mut out = Vec::new();
        for entry in rd {
            let entry =
                entry.map_err(|e| ArtifactError::io("list", dir, kind_of(&e), e.to_string()))?;
            out.push(entry.path());
        }
        out.sort();
        Ok(out)
    }

    fn create_dir_all(&self, dir: &Path) -> Result<(), ArtifactError> {
        std::fs::create_dir_all(dir)
            .map_err(|e| ArtifactError::io("mkdir", dir, kind_of(&e), e.to_string()))
    }
}

struct ChaosState {
    rng: XorShift64,
    writes_seen: u64,
    renames_seen: u64,
    crashed: bool,
}

/// A deterministic fault-injecting [`ArtifactIo`] wrapper.
///
/// Faults are drawn per operation from the seeded xorshift stream of the
/// compiled [`IoFaultPlan`]:
///
/// * `enospc` — the write fails cleanly with [`IoErrorKind::NoSpace`];
///   nothing lands.
/// * `eio` — the write fails cleanly with [`IoErrorKind::Transient`];
///   nothing lands.
/// * `torn` — the write *silently succeeds* but only a prefix lands,
///   modeling power loss mid-write. The publish paths catch this with a
///   read-back verify before the rename, so a torn temp file is never
///   published.
/// * `crash_rename=n` — the n-th rename does not happen and the backend
///   is permanently dead afterwards (every operation fails with
///   [`IoErrorKind::CrashRename`]), modeling a harness crash at the
///   most dangerous instant. Recovery runs against a fresh backend.
pub struct ChaosFs {
    inner: Box<dyn ArtifactIo>,
    plan: IoFaultPlan,
    state: Mutex<ChaosState>,
}

impl ChaosFs {
    /// Wraps `inner` with the faults described by `plan`.
    pub fn new(inner: Box<dyn ArtifactIo>, plan: IoFaultPlan) -> ChaosFs {
        let rng = XorShift64::new(plan.seed);
        ChaosFs {
            inner,
            plan,
            state: Mutex::new(ChaosState {
                rng,
                writes_seen: 0,
                renames_seen: 0,
                crashed: false,
            }),
        }
    }

    /// Convenience: chaos over the real filesystem.
    pub fn over_real(plan: IoFaultPlan) -> ChaosFs {
        ChaosFs::new(Box::new(RealFs), plan)
    }

    /// Whether the simulated crash-at-rename has fired.
    pub fn crashed(&self) -> bool {
        self.lock().crashed
    }

    fn lock(&self) -> std::sync::MutexGuard<'_, ChaosState> {
        self.state.lock().unwrap_or_else(|p| p.into_inner())
    }

    fn dead(op: &'static str, path: &Path) -> ArtifactError {
        ArtifactError::io(
            op,
            path,
            IoErrorKind::CrashRename,
            "harness is down (simulated crash at rename)",
        )
    }

    /// Draws the fate of one write. Returns `Ok(None)` for a clean
    /// write, `Ok(Some(prefix_len))` for a torn write, `Err` for an
    /// injected failure.
    fn draw_write(
        &self,
        op: &'static str,
        path: &Path,
        len: usize,
    ) -> Result<Option<usize>, ArtifactError> {
        let mut st = self.lock();
        if st.crashed {
            return Err(Self::dead(op, path));
        }
        st.writes_seen += 1;
        if st.rng.chance(self.plan.enospc_permille) {
            return Err(ArtifactError::io(
                op,
                path,
                IoErrorKind::NoSpace,
                "injected ENOSPC: no space left on device",
            ));
        }
        if st.rng.chance(self.plan.eio_permille) {
            return Err(ArtifactError::io(
                op,
                path,
                IoErrorKind::Transient,
                "injected transient EIO",
            ));
        }
        if st.rng.chance(self.plan.torn_permille) && len > 1 {
            let cut = 1 + st.rng.below(len as u64 - 1) as usize;
            return Ok(Some(cut));
        }
        Ok(None)
    }

    fn guard(&self, op: &'static str, path: &Path) -> Result<(), ArtifactError> {
        if self.lock().crashed {
            return Err(Self::dead(op, path));
        }
        Ok(())
    }
}

impl ArtifactIo for ChaosFs {
    fn read(&self, path: &Path) -> Result<String, ArtifactError> {
        self.guard("read", path)?;
        self.inner.read(path)
    }

    fn write(&self, path: &Path, contents: &str) -> Result<(), ArtifactError> {
        match self.draw_write("write", path, contents.len())? {
            None => self.inner.write(path, contents),
            Some(cut) => {
                // Tear on a UTF-8 boundary so the backend stays text.
                let mut cut = cut.min(contents.len());
                while !contents.is_char_boundary(cut) {
                    cut -= 1;
                }
                self.inner.write(path, &contents[..cut])
            }
        }
    }

    fn append(&self, path: &Path, contents: &str) -> Result<(), ArtifactError> {
        match self.draw_write("append", path, contents.len())? {
            None => self.inner.append(path, contents),
            Some(cut) => {
                let mut cut = cut.min(contents.len());
                while !contents.is_char_boundary(cut) {
                    cut -= 1;
                }
                self.inner.append(path, &contents[..cut])
            }
        }
    }

    fn rename(&self, from: &Path, to: &Path) -> Result<(), ArtifactError> {
        let crash = {
            let mut st = self.lock();
            if st.crashed {
                return Err(Self::dead("rename", to));
            }
            st.renames_seen += 1;
            if Some(st.renames_seen) == self.plan.crash_rename {
                st.crashed = true;
                true
            } else {
                false
            }
        };
        if crash {
            // The rename is NOT performed: the temp sibling stays behind,
            // exactly as after a real crash between write and rename.
            return Err(ArtifactError::io(
                "rename",
                to,
                IoErrorKind::CrashRename,
                format!(
                    "injected crash at rename #{}",
                    self.plan.crash_rename.unwrap_or(0)
                ),
            ));
        }
        self.inner.rename(from, to)
    }

    fn sync_dir(&self, dir: &Path) -> Result<(), ArtifactError> {
        self.guard("fsync-dir", dir)?;
        self.inner.sync_dir(dir)
    }

    fn remove(&self, path: &Path) -> Result<(), ArtifactError> {
        self.guard("remove", path)?;
        self.inner.remove(path)
    }

    fn exists(&self, path: &Path) -> bool {
        if self.lock().crashed {
            return false;
        }
        self.inner.exists(path)
    }

    fn list(&self, dir: &Path) -> Result<Vec<PathBuf>, ArtifactError> {
        self.guard("list", dir)?;
        self.inner.list(dir)
    }

    fn create_dir_all(&self, dir: &Path) -> Result<(), ArtifactError> {
        self.guard("mkdir", dir)?;
        self.inner.create_dir_all(dir)
    }
}

const fn crc32_table() -> [u32; 256] {
    let mut table = [0u32; 256];
    let mut i = 0usize;
    while i < 256 {
        let mut c = i as u32;
        let mut k = 0;
        while k < 8 {
            c = if c & 1 != 0 {
                0xEDB8_8320 ^ (c >> 1)
            } else {
                c >> 1
            };
            k += 1;
        }
        table[i] = c;
        i += 1;
    }
    table
}

const CRC_TABLE: [u32; 256] = crc32_table();

/// CRC32 (IEEE 802.3, reflected, polynomial `0xEDB8_8320`) of `data`.
///
/// The check value for `b"123456789"` is `0xCBF4_3926`.
pub fn crc32(data: &[u8]) -> u32 {
    crc32_append(0, data)
}

/// Extends a running CRC32 with more data. `crc32_append(crc32(a), b)`
/// equals `crc32(a ++ b)`, which is what lets the journal and streaming
/// writers checksum without buffering.
pub fn crc32_append(crc: u32, data: &[u8]) -> u32 {
    let mut c = !crc;
    for &b in data {
        c = CRC_TABLE[((c ^ u32::from(b)) & 0xff) as usize] ^ (c >> 8);
    }
    !c
}

/// The integrity footer line prefix. The full footer is
/// `#sgxgauge-integrity v1 crc32=<8 hex digits>\n`, appended as the last
/// line of sealed artifacts.
pub const INTEGRITY_PREFIX: &str = "#sgxgauge-integrity v1 crc32=";

/// Appends the integrity footer to `body`. A trailing newline is added
/// first if missing (and included in the checksum), so sealing is
/// reversible by [`unseal`].
pub fn seal(body: &str) -> String {
    let mut out = String::with_capacity(body.len() + INTEGRITY_PREFIX.len() + 10);
    out.push_str(body);
    if !out.ends_with('\n') {
        out.push('\n');
    }
    let crc = crc32(out.as_bytes());
    out.push_str(INTEGRITY_PREFIX);
    push_hex8(&mut out, crc);
    out.push('\n');
    out
}

fn push_hex8(out: &mut String, v: u32) {
    for shift in (0..8).rev() {
        let nibble = (v >> (shift * 4)) & 0xf;
        out.push(char::from_digit(nibble, 16).unwrap_or('0'));
    }
}

/// Splits a sealed artifact into its verified body.
///
/// Returns `(Some(crc), body)` when a footer was present and verified,
/// `(None, text)` when no footer exists (legacy artifacts still load —
/// forward-compat with pre-integrity files).
///
/// # Errors
///
/// [`ArtifactError::Corrupt`] when the footer's CRC does not match the
/// body, [`ArtifactError::Format`] when the footer itself is malformed.
pub fn unseal<'a>(path: &Path, text: &'a str) -> Result<(Option<u32>, &'a str), ArtifactError> {
    let Some(pos) = text.rfind(INTEGRITY_PREFIX) else {
        return Ok((None, text));
    };
    if pos != 0 && !text[..pos].ends_with('\n') {
        return Ok((None, text));
    }
    let footer = &text[pos + INTEGRITY_PREFIX.len()..];
    let hex = footer.trim_end_matches('\n');
    if hex.len() != 8 || !hex.bytes().all(|b| b.is_ascii_hexdigit()) {
        return Err(ArtifactError::Format {
            path: path.to_path_buf(),
            message: format!("malformed integrity footer `{}`", hex.escape_default()),
        });
    }
    let expected = u32::from_str_radix(hex, 16).map_err(|_| ArtifactError::Format {
        path: path.to_path_buf(),
        message: "malformed integrity footer".to_string(),
    })?;
    let body = &text[..pos];
    let found = crc32(body.as_bytes());
    if found != expected {
        return Err(ArtifactError::Corrupt {
            path: path.to_path_buf(),
            expected,
            found,
        });
    }
    Ok((Some(expected), body))
}

/// Returns the temp sibling used by the atomic publish paths
/// (`<path>.tmp`).
pub fn tmp_sibling(path: &Path) -> PathBuf {
    suffixed(path, ".tmp")
}

/// Returns the sibling a checksum-failed artifact is preserved at
/// (`<path>.corrupt`) for post-mortem inspection.
pub fn corrupt_sibling(path: &Path) -> PathBuf {
    suffixed(path, ".corrupt")
}

fn suffixed(path: &Path, suffix: &str) -> PathBuf {
    let mut s = path.as_os_str().to_owned();
    s.push(suffix);
    PathBuf::from(s)
}

fn nonempty_parent(path: &Path) -> Option<&Path> {
    path.parent().filter(|p| !p.as_os_str().is_empty())
}

fn ensure_parent(io: &dyn ArtifactIo, path: &Path) -> Result<(), ArtifactError> {
    if let Some(parent) = nonempty_parent(path) {
        io.create_dir_all(parent)?;
    }
    Ok(())
}

/// Whole-file atomic durable write through an [`ArtifactIo`]: parents
/// created, contents written to a temp sibling, read back and verified
/// (so a silently torn write is caught *before* the rename can publish
/// it), then renamed into place and the directory synced.
///
/// # Errors
///
/// Typed [`ArtifactError`]; a [`IoErrorKind::Torn`] read-back failure is
/// transient and safe to retry.
pub fn write_atomic_with(
    io: &dyn ArtifactIo,
    path: &Path,
    contents: &str,
) -> Result<(), ArtifactError> {
    ensure_parent(io, path)?;
    let tmp = tmp_sibling(path);
    io.write(&tmp, contents)?;
    let back = io.read(&tmp)?;
    if back != contents {
        io.remove(&tmp).ok();
        return Err(ArtifactError::io(
            "verify",
            &tmp,
            IoErrorKind::Torn,
            format!(
                "read-back mismatch after write ({} of {} bytes landed)",
                back.len(),
                contents.len()
            ),
        ));
    }
    io.rename(&tmp, path)?;
    if let Some(parent) = nonempty_parent(path) {
        io.sync_dir(parent)?;
    }
    Ok(())
}

/// The recovery journal: an append-only sibling (`<artifact>.journal`)
/// recording `intent` (about to publish, with the contents' CRC32) and
/// `commit` (publish completed) records, one tab-separated line each.
///
/// On startup, [`recover`] replays the journal: an intent without a
/// commit means the previous process died mid-publish, and the temp
/// sibling is either completed (its CRC matches the intent) or
/// quarantined (torn).
#[derive(Debug, Clone)]
pub struct Journal {
    path: PathBuf,
}

impl Journal {
    /// The journal sibling for an artifact path.
    pub fn for_artifact(artifact: &Path) -> Journal {
        Journal {
            path: suffixed(artifact, ".journal"),
        }
    }

    /// The journal's own path.
    pub fn path(&self) -> &Path {
        &self.path
    }

    /// Records that `target` is about to be published with contents
    /// hashing to `crc`.
    pub fn intent(
        &self,
        io: &dyn ArtifactIo,
        target: &Path,
        crc: u32,
    ) -> Result<(), ArtifactError> {
        let mut line = String::from("intent\t");
        push_hex8(&mut line, crc);
        line.push('\t');
        line.push_str(&target.display().to_string());
        line.push('\n');
        io.append(&self.path, &line)
    }

    /// Records that `target` was published successfully.
    pub fn commit(&self, io: &dyn ArtifactIo, target: &Path) -> Result<(), ArtifactError> {
        let line = format!("commit\t{}\n", target.display());
        io.append(&self.path, &line)
    }

    /// Removes the journal (end of a clean run, or after recovery).
    pub fn retire(&self, io: &dyn ArtifactIo) -> Result<(), ArtifactError> {
        io.remove(&self.path)
    }
}

/// Journaled atomic publish: intent → durable temp write → read-back
/// verify → rename → directory sync → commit. A crash at any step
/// leaves state [`recover`] can repair or quarantine.
///
/// # Errors
///
/// Typed [`ArtifactError`]; torn and transient failures are retryable.
pub fn publish(
    io: &dyn ArtifactIo,
    journal: &Journal,
    path: &Path,
    contents: &str,
) -> Result<(), ArtifactError> {
    ensure_parent(io, path)?;
    journal.intent(io, path, crc32(contents.as_bytes()))?;
    let tmp = tmp_sibling(path);
    io.write(&tmp, contents)?;
    let back = io.read(&tmp)?;
    if back != contents {
        io.remove(&tmp).ok();
        return Err(ArtifactError::io(
            "verify",
            &tmp,
            IoErrorKind::Torn,
            format!(
                "read-back mismatch after write ({} of {} bytes landed)",
                back.len(),
                contents.len()
            ),
        ));
    }
    io.rename(&tmp, path)?;
    if let Some(parent) = nonempty_parent(path) {
        io.sync_dir(parent)?;
    }
    journal.commit(io, path)
}

/// [`publish`] of an integrity-sealed body with a bounded transient
/// retry budget: torn writes and transient EIO are redone up to
/// `attempts` times, everything else (ENOSPC, crash, corruption)
/// surfaces immediately. The retry-bounded publish the checkpoint sink
/// and campaign orchestrators share.
///
/// # Errors
///
/// The last transient [`ArtifactError`] when the budget is exhausted,
/// or the first non-transient one.
pub fn publish_sealed(
    io: &dyn ArtifactIo,
    journal: &Journal,
    path: &Path,
    body: &str,
    attempts: usize,
) -> Result<(), ArtifactError> {
    let sealed = seal(body);
    let mut last = ArtifactError::io(
        "publish",
        path,
        IoErrorKind::Other,
        "publish retry budget exhausted",
    );
    for _ in 0..attempts.max(1) {
        match publish(io, journal, path, &sealed) {
            Ok(()) => return Ok(()),
            Err(e) if e.is_transient() => last = e,
            Err(e) => return Err(e),
        }
    }
    Err(last)
}

/// What startup recovery did, for the report and logs.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct RecoveryReport {
    /// Publishes that were completed (the temp sibling verified against
    /// the journaled intent) or confirmed already committed.
    pub repaired: Vec<PathBuf>,
    /// Torn state moved aside for inspection (`.quarantine` /
    /// `.corrupt` siblings).
    pub quarantined: Vec<PathBuf>,
    /// Number of journaled publishes found interrupted.
    pub interrupted: usize,
}

impl RecoveryReport {
    /// Whether recovery found nothing to do.
    pub fn is_clean(&self) -> bool {
        self.repaired.is_empty() && self.quarantined.is_empty() && self.interrupted == 0
    }
}

/// Scans the artifact's recovery journal and repairs or quarantines
/// interrupted publishes. Call this before resuming from a checkpoint.
///
/// * temp sibling present and CRC matches the journaled intent → the
///   rename is completed (the publish is *repaired*);
/// * temp sibling present but torn → moved to `<tmp>.quarantine`;
/// * no temp but the target already matches the intent → the commit
///   record was lost after a successful rename; nothing to do;
/// * stale temp sibling with no journal at all → quarantined (a crash
///   predating the first journal record).
///
/// The journal is retired afterwards. A torn trailing journal line
/// (the journal append itself crashed) is ignored.
///
/// # Errors
///
/// Typed [`ArtifactError`] if the repair I/O itself fails.
pub fn recover(io: &dyn ArtifactIo, artifact: &Path) -> Result<RecoveryReport, ArtifactError> {
    let journal = Journal::for_artifact(artifact);
    let mut report = RecoveryReport::default();

    // last record per target wins
    let mut state: BTreeMap<String, (Option<u32>, bool)> = BTreeMap::new();
    if io.exists(journal.path()) {
        let text = io.read(journal.path())?;
        for line in text.lines() {
            let mut parts = line.splitn(3, '\t');
            match (parts.next(), parts.next(), parts.next()) {
                (Some("intent"), Some(hex), Some(target)) => {
                    let crc = u32::from_str_radix(hex, 16).ok();
                    state.insert(target.to_string(), (crc, false));
                }
                (Some("commit"), Some(target), _) => {
                    state
                        .entry(target.to_string())
                        .and_modify(|e| e.1 = true)
                        .or_insert((None, true));
                }
                // torn or unknown line: skip (journal appends can tear too)
                _ => {}
            }
        }
    }

    for (target, (crc, committed)) in &state {
        if *committed {
            continue;
        }
        report.interrupted += 1;
        let target = PathBuf::from(target);
        let tmp = tmp_sibling(&target);
        if io.exists(&tmp) {
            let text = io.read(&tmp)?;
            if crc.is_some() && *crc == Some(crc32(text.as_bytes())) {
                io.rename(&tmp, &target)?;
                if let Some(parent) = nonempty_parent(&target) {
                    io.sync_dir(parent)?;
                }
                report.repaired.push(target);
            } else {
                let q = suffixed(&tmp, ".quarantine");
                io.rename(&tmp, &q)?;
                report.quarantined.push(q);
            }
        } else if io.exists(&target) {
            let text = io.read(&target)?;
            if crc.is_some() && *crc == Some(crc32(text.as_bytes())) {
                // rename landed; only the commit record was lost
                report.repaired.push(target);
            }
            // otherwise the target is the previous (pre-publish)
            // version: the crash hit before the rename — leave it.
        }
    }

    // A stale temp sibling of the artifact itself with no journaled
    // intent predates the journal; never load it, move it aside.
    let tmp = tmp_sibling(artifact);
    if io.exists(&tmp) && !state.contains_key(&artifact.display().to_string()) {
        let q = suffixed(&tmp, ".quarantine");
        io.rename(&tmp, &q)?;
        report.quarantined.push(q);
    }

    journal.retire(io)?;
    Ok(report)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn scratch(tag: &str) -> PathBuf {
        let dir = std::env::temp_dir().join(format!("sgxgauge-io-{tag}-{}", std::process::id()));
        std::fs::remove_dir_all(&dir).ok();
        std::fs::create_dir_all(&dir).unwrap();
        dir
    }

    #[test]
    fn crc32_known_vectors() {
        assert_eq!(crc32(b"123456789"), 0xCBF4_3926);
        assert_eq!(crc32(b""), 0);
        assert_eq!(
            crc32(b"The quick brown fox jumps over the lazy dog"),
            0x414F_A339
        );
    }

    #[test]
    fn crc32_append_is_consistent() {
        let (a, b) = (b"hello ".as_slice(), b"world".as_slice());
        let whole = crc32(b"hello world");
        assert_eq!(crc32_append(crc32(a), b), whole);
    }

    #[test]
    fn seal_unseal_round_trips() {
        let body = "a,b\n1,2\n";
        let sealed = seal(body);
        assert!(sealed.ends_with('\n'));
        let (crc, back) = unseal(Path::new("x.csv"), &sealed).unwrap();
        assert_eq!(back, body);
        assert_eq!(crc, Some(crc32(body.as_bytes())));
    }

    #[test]
    fn unseal_detects_corruption_and_passes_legacy() {
        let sealed = seal("{\"v\":1}\n");
        let tampered = sealed.replace("\"v\":1", "\"v\":2");
        match unseal(Path::new("c.json"), &tampered) {
            Err(ArtifactError::Corrupt {
                expected, found, ..
            }) => assert_ne!(expected, found),
            other => panic!("expected Corrupt, got {other:?}"),
        }
        // no footer at all: legacy file, loads verbatim
        let (crc, body) = unseal(Path::new("old.json"), "{\"v\":1}\n").unwrap();
        assert_eq!(crc, None);
        assert_eq!(body, "{\"v\":1}\n");
    }

    #[test]
    fn real_fs_atomic_write_publishes_without_temp_residue() {
        let dir = scratch("real");
        let io = RealFs;
        let path = dir.join("out/report.csv");
        write_atomic_with(&io, &path, "a,b\n1,2\n").unwrap();
        assert_eq!(io.read(&path).unwrap(), "a,b\n1,2\n");
        assert!(!io.exists(&tmp_sibling(&path)));
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn journaled_publish_commits_and_recovery_is_clean() {
        let dir = scratch("journal");
        let io = RealFs;
        let path = dir.join("ck.json");
        let journal = Journal::for_artifact(&path);
        publish(&io, &journal, &path, "{\"v\":1}\n").unwrap();
        journal.retire(&io).unwrap();
        let rec = recover(&io, &path).unwrap();
        assert!(rec.is_clean());
        assert_eq!(io.read(&path).unwrap(), "{\"v\":1}\n");
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn recovery_completes_a_verified_interrupted_publish() {
        let dir = scratch("repair");
        let io = RealFs;
        let path = dir.join("ck.json");
        let journal = Journal::for_artifact(&path);
        // Simulate a crash after intent + temp write but before rename.
        journal.intent(&io, &path, crc32(b"{\"v\":2}\n")).unwrap();
        io.write(&tmp_sibling(&path), "{\"v\":2}\n").unwrap();
        let rec = recover(&io, &path).unwrap();
        assert_eq!(rec.repaired, vec![path.clone()]);
        assert!(rec.quarantined.is_empty());
        assert_eq!(io.read(&path).unwrap(), "{\"v\":2}\n");
        assert!(!io.exists(journal.path()), "journal retired");
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn recovery_quarantines_a_torn_temp() {
        let dir = scratch("quarantine");
        let io = RealFs;
        let path = dir.join("ck.json");
        let journal = Journal::for_artifact(&path);
        journal.intent(&io, &path, crc32(b"{\"v\":3}\n")).unwrap();
        io.write(&tmp_sibling(&path), "{\"v").unwrap(); // torn
        let rec = recover(&io, &path).unwrap();
        assert!(rec.repaired.is_empty());
        assert_eq!(rec.quarantined.len(), 1);
        assert!(rec.quarantined[0]
            .display()
            .to_string()
            .ends_with(".quarantine"));
        assert!(!io.exists(&path), "torn temp never published");
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn chaos_enospc_and_eio_fail_cleanly_and_are_typed() {
        let dir = scratch("chaos-write");
        let plan = IoFaultPlan::parse("seed=11,enospc=1000").unwrap();
        let io = ChaosFs::over_real(plan);
        let err = io.write(&dir.join("x"), "data").unwrap_err();
        match err {
            ArtifactError::Io { kind, .. } => assert_eq!(kind, IoErrorKind::NoSpace),
            other => panic!("expected Io, got {other:?}"),
        }
        assert!(!err.is_transient());
        let eio = ChaosFs::over_real(IoFaultPlan::parse("seed=11,eio=1000").unwrap());
        let err = eio.write(&dir.join("y"), "data").unwrap_err();
        assert!(err.is_transient());
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn chaos_torn_write_is_caught_by_read_back() {
        let dir = scratch("chaos-torn");
        let plan = IoFaultPlan::parse("seed=3,torn=1000").unwrap();
        let io = ChaosFs::over_real(plan);
        let path = dir.join("t.csv");
        let err = write_atomic_with(&io, &path, "a,b\n1,2\n").unwrap_err();
        match &err {
            ArtifactError::Io { kind, .. } => assert_eq!(*kind, IoErrorKind::Torn),
            other => panic!("expected torn Io, got {other:?}"),
        }
        assert!(err.is_transient());
        assert!(!io.exists(&path), "torn write never published");
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn chaos_crash_at_rename_leaves_temp_and_kills_backend() {
        let dir = scratch("chaos-crash");
        let plan = IoFaultPlan::parse("seed=5,crash_rename=1").unwrap();
        let io = ChaosFs::over_real(plan);
        let path = dir.join("ck.json");
        let err = write_atomic_with(&io, &path, "{\"v\":1}\n").unwrap_err();
        match &err {
            ArtifactError::Io { kind, .. } => assert_eq!(*kind, IoErrorKind::CrashRename),
            other => panic!("expected crash Io, got {other:?}"),
        }
        assert!(io.crashed());
        // every later operation fails: the process is dead
        assert!(io.read(&path).is_err());
        assert!(io.write(&path, "x").is_err());
        // the temp sibling is still on the real fs, awaiting recovery
        let real = RealFs;
        assert!(real.exists(&tmp_sibling(&path)));
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn chaos_is_deterministic_per_seed() {
        let run = |seed: u64| {
            let plan = IoFaultPlan::parse(&format!("seed={seed},eio=300,torn=200")).unwrap();
            let io = ChaosFs::over_real(plan);
            let dir = scratch(&format!("det-{seed}"));
            let mut fates = Vec::new();
            for i in 0..32 {
                let r = io.write(&dir.join(format!("f{i}")), "payload-payload");
                fates.push(match r {
                    Ok(()) => 'o',
                    Err(ArtifactError::Io {
                        kind: IoErrorKind::Transient,
                        ..
                    }) => 'e',
                    Err(_) => '?',
                });
            }
            std::fs::remove_dir_all(&dir).ok();
            fates
        };
        assert_eq!(run(42), run(42));
        assert_ne!(run(42), run(43));
    }
}
