//! The single emission path for every artifact the suite writes.
//!
//! Reports (CSV), checkpoints (JSON) and traces (JSONL) used to each own
//! their file-writing code. They now share one [`Emitter`] trait: an
//! emitter knows its [`Format`] and how to [`render`](Emitter::render)
//! itself to text; [`Emitter::emit`] publishes that text atomically and
//! *durably* through the [`crate::io`] artifact plane — temp sibling,
//! fsync, read-back verification, rename, directory sync — so neither a
//! crash nor a silently torn write can publish a truncated artifact.
//!
//! Every emission is injectable: [`Emitter::emit_with`] (and the sealed
//! variant, which appends a CRC32 integrity footer) takes any
//! [`ArtifactIo`] backend, which is how the chaos matrix drives these
//! paths through deterministic fault injection. Errors are the typed
//! [`ArtifactError`], not strings.

use crate::io::{self, ArtifactError, ArtifactIo, RealFs};
use std::path::Path;

/// The on-disk formats the suite emits.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Format {
    /// Comma-separated values (report tables, timelines).
    Csv,
    /// A single JSON document (checkpoints).
    Json,
    /// JSON Lines: one JSON object per line (trace streams).
    Jsonl,
}

impl Format {
    /// Infers the format from a path's extension (`.csv`, `.json`,
    /// `.jsonl`), case-insensitively.
    pub fn from_path(path: &Path) -> Option<Format> {
        let ext = path.extension()?.to_str()?.to_ascii_lowercase();
        match ext.as_str() {
            "csv" => Some(Format::Csv),
            "json" => Some(Format::Json),
            "jsonl" => Some(Format::Jsonl),
            _ => None,
        }
    }
}

impl std::fmt::Display for Format {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(match self {
            Format::Csv => "csv",
            Format::Json => "json",
            Format::Jsonl => "jsonl",
        })
    }
}

/// Something that can be published to disk.
///
/// Implementors provide the text and its format; the trait provides the
/// one shared, atomic write path.
pub trait Emitter {
    /// The emitter's on-disk format.
    fn format(&self) -> Format;

    /// Renders the complete artifact as text.
    fn render(&self) -> String;

    /// Publishes the rendered artifact to `path` atomically and durably
    /// on the real filesystem, creating parent directories as needed.
    ///
    /// # Errors
    ///
    /// A typed [`ArtifactError`].
    fn emit(&self, path: &Path) -> Result<(), ArtifactError> {
        self.emit_with(&RealFs, path)
    }

    /// [`Emitter::emit`] through an injectable [`ArtifactIo`] backend.
    ///
    /// # Errors
    ///
    /// A typed [`ArtifactError`]; torn/transient failures are safe to
    /// retry.
    fn emit_with(&self, io: &dyn ArtifactIo, path: &Path) -> Result<(), ArtifactError> {
        io::write_atomic_with(io, path, &self.render())
    }

    /// Like [`Emitter::emit_with`], but seals the artifact with the
    /// `#sgxgauge-integrity` CRC32 footer so readers can verify it was
    /// published whole. Plain [`Emitter::emit`] stays footer-free, so
    /// default outputs remain byte-identical to earlier releases.
    ///
    /// # Errors
    ///
    /// A typed [`ArtifactError`]; torn/transient failures are safe to
    /// retry.
    fn emit_sealed_with(&self, io: &dyn ArtifactIo, path: &Path) -> Result<(), ArtifactError> {
        io::write_atomic_with(io, path, &io::seal(&self.render()))
    }
}

/// A pre-rendered JSON document (the checkpoint writer's adapter into
/// the shared emission path).
#[derive(Debug, Clone)]
pub struct JsonDoc {
    /// The complete document text.
    pub body: String,
}

impl Emitter for JsonDoc {
    fn format(&self) -> Format {
        Format::Json
    }

    fn render(&self) -> String {
        self.body.clone()
    }
}

/// A trace sink viewed as a JSONL artifact.
#[derive(Debug, Clone, Copy)]
pub struct TraceJsonl<'a>(pub &'a trace::TraceSink);

impl Emitter for TraceJsonl<'_> {
    fn format(&self) -> Format {
        Format::Jsonl
    }

    fn render(&self) -> String {
        self.0.render_jsonl()
    }
}

/// Whole-file atomic durable write on the real filesystem: parent
/// directories are created, the contents land in a temp sibling
/// (fsynced and read back to verify), and a rename followed by a
/// directory sync publishes them.
///
/// # Errors
///
/// A typed [`ArtifactError`].
pub fn write_atomic(path: &Path, contents: &str) -> Result<(), ArtifactError> {
    io::write_atomic_with(&RealFs, path, contents)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn format_from_extension() {
        assert_eq!(Format::from_path(Path::new("a/b.csv")), Some(Format::Csv));
        assert_eq!(Format::from_path(Path::new("b.JSON")), Some(Format::Json));
        assert_eq!(Format::from_path(Path::new("t.jsonl")), Some(Format::Jsonl));
        assert_eq!(Format::from_path(Path::new("t.txt")), None);
        assert_eq!(Format::from_path(Path::new("noext")), None);
    }

    #[test]
    fn atomic_write_creates_parents_and_publishes() {
        let dir = std::env::temp_dir().join(format!("sgxgauge-emit-{}", std::process::id()));
        let path = dir.join("deep/nested/doc.json");
        let doc = JsonDoc {
            body: "{\"ok\":1}\n".to_owned(),
        };
        doc.emit(&path).expect("emit succeeds");
        assert_eq!(std::fs::read_to_string(&path).unwrap(), "{\"ok\":1}\n");
        assert!(
            !path.with_extension("json.tmp").exists(),
            "temp sibling renamed away"
        );
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn trace_jsonl_emitter_round_trips() {
        let mut sink = trace::TraceSink::new(16);
        sink.emit(0, 10, trace::TraceEvent::EcallEnter);
        let e = TraceJsonl(&sink);
        assert_eq!(e.format(), Format::Jsonl);
        assert!(e.render().contains("ecall_enter"));
    }
}
