//! The single emission path for every artifact the suite writes.
//!
//! Reports (CSV), checkpoints (JSON) and traces (JSONL) used to each own
//! their file-writing code. They now share one [`Emitter`] trait: an
//! emitter knows its [`Format`] and how to [`render`](Emitter::render)
//! itself to text; [`Emitter::emit`] publishes that text atomically
//! (temp sibling + rename, parent directories created), so a crash
//! mid-write never leaves a torn artifact behind — the guarantee the
//! checkpoint writer pioneered, now shared by every output.

use std::path::{Path, PathBuf};

/// The on-disk formats the suite emits.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Format {
    /// Comma-separated values (report tables, timelines).
    Csv,
    /// A single JSON document (checkpoints).
    Json,
    /// JSON Lines: one JSON object per line (trace streams).
    Jsonl,
}

impl Format {
    /// Infers the format from a path's extension (`.csv`, `.json`,
    /// `.jsonl`), case-insensitively.
    pub fn from_path(path: &Path) -> Option<Format> {
        let ext = path.extension()?.to_str()?.to_ascii_lowercase();
        match ext.as_str() {
            "csv" => Some(Format::Csv),
            "json" => Some(Format::Json),
            "jsonl" => Some(Format::Jsonl),
            _ => None,
        }
    }
}

impl std::fmt::Display for Format {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(match self {
            Format::Csv => "csv",
            Format::Json => "json",
            Format::Jsonl => "jsonl",
        })
    }
}

/// Something that can be published to disk.
///
/// Implementors provide the text and its format; the trait provides the
/// one shared, atomic write path.
pub trait Emitter {
    /// The emitter's on-disk format.
    fn format(&self) -> Format;

    /// Renders the complete artifact as text.
    fn render(&self) -> String;

    /// Publishes the rendered artifact to `path` atomically, creating
    /// parent directories as needed.
    ///
    /// # Errors
    ///
    /// A human-readable description of the I/O failure.
    fn emit(&self, path: &Path) -> Result<(), String> {
        write_atomic(path, &self.render())
    }
}

/// A pre-rendered JSON document (the checkpoint writer's adapter into
/// the shared emission path).
#[derive(Debug, Clone)]
pub struct JsonDoc {
    /// The complete document text.
    pub body: String,
}

impl Emitter for JsonDoc {
    fn format(&self) -> Format {
        Format::Json
    }

    fn render(&self) -> String {
        self.body.clone()
    }
}

/// A trace sink viewed as a JSONL artifact.
#[derive(Debug, Clone, Copy)]
pub struct TraceJsonl<'a>(pub &'a trace::TraceSink);

impl Emitter for TraceJsonl<'_> {
    fn format(&self) -> Format {
        Format::Jsonl
    }

    fn render(&self) -> String {
        self.0.render_jsonl()
    }
}

/// Whole-file atomic write: parent directories are created, the contents
/// land in a temp sibling, and a rename publishes them.
///
/// # Errors
///
/// A human-readable description of the I/O failure.
pub fn write_atomic(path: &Path, contents: &str) -> Result<(), String> {
    if let Some(parent) = path.parent() {
        if !parent.as_os_str().is_empty() {
            std::fs::create_dir_all(parent)
                .map_err(|e| format!("cannot create {}: {e}", parent.display()))?;
        }
    }
    let mut tmp = path.as_os_str().to_owned();
    tmp.push(".tmp");
    let tmp = PathBuf::from(tmp);
    std::fs::write(&tmp, contents).map_err(|e| format!("cannot write {}: {e}", tmp.display()))?;
    std::fs::rename(&tmp, path).map_err(|e| format!("cannot publish {}: {e}", path.display()))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn format_from_extension() {
        assert_eq!(Format::from_path(Path::new("a/b.csv")), Some(Format::Csv));
        assert_eq!(Format::from_path(Path::new("b.JSON")), Some(Format::Json));
        assert_eq!(Format::from_path(Path::new("t.jsonl")), Some(Format::Jsonl));
        assert_eq!(Format::from_path(Path::new("t.txt")), None);
        assert_eq!(Format::from_path(Path::new("noext")), None);
    }

    #[test]
    fn atomic_write_creates_parents_and_publishes() {
        let dir = std::env::temp_dir().join(format!("sgxgauge-emit-{}", std::process::id()));
        let path = dir.join("deep/nested/doc.json");
        let doc = JsonDoc {
            body: "{\"ok\":1}\n".to_owned(),
        };
        doc.emit(&path).expect("emit succeeds");
        assert_eq!(std::fs::read_to_string(&path).unwrap(), "{\"ok\":1}\n");
        assert!(
            !path.with_extension("json.tmp").exists(),
            "temp sibling renamed away"
        );
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn trace_jsonl_emitter_round_trips() {
        let mut sink = trace::TraceSink::new(16);
        sink.emit(0, 10, trace::TraceEvent::EcallEnter);
        let e = TraceJsonl(&sink);
        assert_eq!(e.format(), Format::Jsonl);
        assert!(e.render().contains("ecall_enter"));
    }
}
