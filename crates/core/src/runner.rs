//! Executing (workload × mode × setting) combinations.

use crate::env::{CycleBudgetExceeded, Env, EnvConfig};
use crate::modes::{ExecMode, InputSetting};
use crate::workload::{Workload, WorkloadError, WorkloadOutput};
use faults::FaultPlan;
use libos_sim::StartupStats;
use mem_sim::Counters;
use sgx_sim::{DriverStats, SgxCounters};

/// Configuration of the per-run trace sink ([`Runner::tracing`]).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct TraceConfig {
    /// Ring-buffer capacity in records; the oldest records are
    /// overwritten (and counted as dropped) past this bound.
    pub capacity: usize,
    /// Spacing of periodic counter samples in simulated cycles; `0`
    /// disables periodic sampling (phase boundaries still snapshot).
    pub sample_interval_cycles: u64,
}

impl Default for TraceConfig {
    fn default() -> Self {
        TraceConfig {
            capacity: trace::DEFAULT_CAPACITY,
            sample_interval_cycles: trace::DEFAULT_SAMPLE_INTERVAL,
        }
    }
}

/// Configuration of a [`Runner`].
#[derive(Debug, Clone)]
pub struct RunnerConfig {
    /// Base environment template (the mode field is overridden per run).
    pub env: EnvConfig,
    /// Repetitions per combination; the paper uses ≥10 and reports the
    /// geometric mean, which [`crate::report`] computes from the reports.
    pub repetitions: usize,
}

impl RunnerConfig {
    /// Paper-faithful platform with `reps` repetitions.
    pub fn paper(reps: usize) -> Self {
        RunnerConfig {
            env: EnvConfig::paper(ExecMode::Vanilla, 0),
            repetitions: reps,
        }
    }

    /// Fast configuration for tests.
    pub fn quick_test() -> Self {
        RunnerConfig {
            env: EnvConfig::quick_test(ExecMode::Vanilla),
            repetitions: 1,
        }
    }
}

/// Everything measured in one run.
#[derive(Debug, Clone)]
pub struct RunReport {
    /// Workload name.
    pub workload: &'static str,
    /// Mode the run executed in.
    pub mode: ExecMode,
    /// Input setting.
    pub setting: InputSetting,
    /// Measured wall-clock in cycles (max over thread clocks).
    pub runtime_cycles: u64,
    /// Hardware counters of the measured region.
    pub counters: Counters,
    /// SGX event counters of the measured region.
    pub sgx: SgxCounters,
    /// Driver latency samples of the measured region.
    pub driver: DriverStats,
    /// LibOS start-up statistics (LibOS mode only; excluded from
    /// `runtime_cycles` per Appendix D).
    pub libos_startup: Option<StartupStats>,
    /// Core clock of the machine the run executed on, in Hz.
    pub clock_hz: u64,
    /// The workload's output (ops, checksum, metrics).
    pub output: WorkloadOutput,
    /// Phase-resolved counter timeline: one snapshot per periodic sample
    /// and per phase boundary. Empty unless the run was traced.
    pub timeline: Vec<trace::TimelinePoint>,
    /// Per-phase cycle attribution (app vs transition vs paging vs MEE).
    /// Empty unless the run was traced.
    pub phases: Vec<trace::PhaseAttribution>,
    /// The raw trace stream, for JSONL export. `None` unless the run was
    /// traced. Not persisted by checkpoints.
    pub trace: Option<trace::TraceSink>,
}

impl RunReport {
    /// Runtime in seconds at the machine's configured clock.
    pub fn runtime_seconds(&self) -> f64 {
        self.runtime_cycles as f64 / self.clock_hz.max(1) as f64
    }

    /// The machine clock in GHz, for display.
    pub fn clock_ghz(&self) -> f64 {
        self.clock_hz as f64 / 1e9
    }
}

/// Runs workloads and produces [`RunReport`]s.
#[derive(Debug, Clone)]
pub struct Runner {
    cfg: RunnerConfig,
    faults: Option<FaultPlan>,
    cell_budget: Option<u64>,
    trace: Option<TraceConfig>,
}

impl Runner {
    /// Creates a runner.
    pub fn new(cfg: RunnerConfig) -> Self {
        Runner {
            cfg,
            faults: None,
            cell_budget: None,
            trace: None,
        }
    }

    /// Installs a trace sink into every run: the report's `timeline`,
    /// `phases` and `trace` fields are filled, and the whole measured
    /// region executes inside an implicit `"run"` phase span.
    #[must_use]
    pub fn tracing(mut self, cfg: TraceConfig) -> Self {
        self.trace = Some(cfg);
        self
    }

    /// The trace configuration in use, if any.
    pub fn trace_config(&self) -> Option<TraceConfig> {
        self.trace
    }

    /// Injects faults from `plan` into every run (see
    /// [`faults::FaultPlan`]).
    #[must_use]
    pub fn faults(mut self, plan: FaultPlan) -> Self {
        self.faults = Some(plan);
        self
    }

    /// Cancels any run whose measured region exceeds `cycles` simulated
    /// cycles, surfacing [`WorkloadError::Timeout`].
    #[must_use]
    pub fn cell_budget(mut self, cycles: u64) -> Self {
        self.cell_budget = Some(cycles);
        self
    }

    /// The configuration in use.
    pub fn config(&self) -> &RunnerConfig {
        &self.cfg
    }

    /// The fault plan in use, if any.
    pub fn fault_plan(&self) -> Option<&FaultPlan> {
        self.faults.as_ref()
    }

    /// The per-run cycle budget, if any.
    pub fn cell_budget_cycles(&self) -> Option<u64> {
        self.cell_budget
    }

    /// Runs one (workload, mode, setting) combination once and reports.
    ///
    /// The sequence mirrors the paper's methodology: build the platform
    /// (enclave creation / LibOS launch), run `setup` unmeasured, enter
    /// the application, reset all counters, execute, snapshot.
    ///
    /// # Errors
    ///
    /// [`WorkloadError::Other`] when the workload does not support
    /// `mode`; otherwise whatever the workload surfaces.
    pub fn run_once(
        &self,
        workload: &dyn Workload,
        mode: ExecMode,
        setting: InputSetting,
    ) -> Result<RunReport, WorkloadError> {
        self.run_salted(workload, mode, setting, 0)
    }

    /// [`Runner::run_once`] with an explicit fault salt: the sweep
    /// executor passes a per-cell, per-attempt salt so a retried cell
    /// faces a fresh fault draw while the sweep stays deterministic.
    ///
    /// # Errors
    ///
    /// Same as [`Runner::run_once`].
    pub fn run_salted(
        &self,
        workload: &dyn Workload,
        mode: ExecMode,
        setting: InputSetting,
        salt: u64,
    ) -> Result<RunReport, WorkloadError> {
        if !workload.supports(mode) {
            return Err(WorkloadError::Other(format!(
                "{} does not support {mode} mode",
                workload.name()
            )));
        }
        let spec = workload.spec(setting);
        let mut env_cfg = self.cfg.env.clone();
        env_cfg.mode = mode;
        env_cfg.protected_hint = spec.protected_bytes;
        let mut env = Env::new(env_cfg)?;
        workload.setup(&mut env, setting)?;
        env.start_app()?;
        let libos_startup = env.libos_startup();
        env.reset_measurement();
        // Faults and the watchdog arm only for the measured region:
        // setup and enclave builds are the harness's own work.
        if let Some(plan) = &self.faults {
            if !plan.is_empty() {
                env.set_fault_hook(plan.compile(salt));
            }
        }
        if let Some(tc) = self.trace {
            env.machine_mut()
                .mem_mut()
                .set_trace_sink(trace::TraceSink::with_config(
                    tc.capacity,
                    tc.sample_interval_cycles,
                ));
            // The whole measured region runs inside an implicit span so
            // even un-instrumented workloads get one attribution row.
            env.phase("run");
        }
        if let Some(budget) = self.cell_budget {
            env.arm_cycle_budget(budget);
        }
        let output = match self.cell_budget {
            // With a watchdog armed, catch its typed unwind and surface
            // it as an error; any other panic keeps propagating.
            Some(_) => {
                match std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
                    workload.execute(&mut env, setting)
                })) {
                    Ok(res) => res?,
                    Err(payload) => match payload.downcast::<CycleBudgetExceeded>() {
                        Ok(exceeded) => {
                            return Err(WorkloadError::Timeout {
                                budget_cycles: exceeded.budget_cycles,
                                elapsed_cycles: exceeded.elapsed_cycles,
                            })
                        }
                        Err(other) => std::panic::resume_unwind(other),
                    },
                }
            }
            None => workload.execute(&mut env, setting)?,
        };
        let (timeline, phases, trace_sink) = if self.trace.is_some() {
            env.phase_end("run")?;
            let sink = env
                .machine_mut()
                .mem_mut()
                .take_trace_sink()
                .expect("sink installed before execute");
            // Spans the workload opened but never closed are misuse,
            // reported as a typed error rather than a bad timeline.
            sink.finish()?;
            (sink.timeline(), sink.phase_attribution(), Some(sink))
        } else {
            (Vec::new(), Vec::new(), None)
        };
        Ok(RunReport {
            workload: workload.name(),
            mode,
            setting,
            runtime_cycles: env.elapsed_cycles(),
            counters: *env.machine().mem().counters(),
            sgx: *env.machine().sgx_counters(),
            driver: env.machine().driver_stats().clone(),
            libos_startup,
            clock_hz: env.machine().config().mem.clock_hz,
            output,
            timeline,
            phases,
            trace: trace_sink,
        })
    }

    /// Runs the configured number of repetitions and returns all reports.
    ///
    /// # Errors
    ///
    /// Fails fast on the first failing repetition.
    pub fn run(
        &self,
        workload: &dyn Workload,
        mode: ExecMode,
        setting: InputSetting,
    ) -> Result<Vec<RunReport>, WorkloadError> {
        (0..self.cfg.repetitions.max(1))
            .map(|_| self.run_once(workload, mode, setting))
            .collect()
    }

    /// Runs every supported mode at `setting`, returning reports in
    /// [`ExecMode::ALL`] order (one per mode).
    ///
    /// # Errors
    ///
    /// Fails fast on the first failing run.
    pub fn run_modes(
        &self,
        workload: &dyn Workload,
        setting: InputSetting,
    ) -> Result<Vec<RunReport>, WorkloadError> {
        ExecMode::ALL
            .iter()
            .filter(|m| workload.supports(**m))
            .map(|&m| self.run_once(workload, m, setting))
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::env::Placement;
    use crate::workload::WorkloadSpec;

    /// A minimal workload touching protected memory.
    struct Toy;

    impl Workload for Toy {
        fn name(&self) -> &'static str {
            "Toy"
        }

        fn property(&self) -> &'static str {
            "test"
        }

        fn supported_modes(&self) -> &'static [ExecMode] {
            &[ExecMode::Vanilla, ExecMode::Native, ExecMode::LibOs]
        }

        fn spec(&self, _setting: InputSetting) -> WorkloadSpec {
            WorkloadSpec::new(1 << 20, "toy")
        }

        fn setup(&self, env: &mut Env, _setting: InputSetting) -> Result<(), WorkloadError> {
            env.put_file("in", vec![7u8; 4096]);
            Ok(())
        }

        fn execute(
            &self,
            env: &mut Env,
            _setting: InputSetting,
        ) -> Result<WorkloadOutput, WorkloadError> {
            let r = env.alloc(64 << 10, Placement::Protected)?;
            env.secure_call(|env| {
                let n = env.read_file_into("in", r, 0)?;
                let mut sum = 0u64;
                for i in 0..n / 8 {
                    sum = sum.wrapping_add(env.read_u64(r, i * 8));
                }
                Ok::<u64, WorkloadError>(sum)
            })??;
            Ok(WorkloadOutput {
                ops: 1,
                checksum: 42,
                metrics: vec![],
            })
        }
    }

    #[test]
    fn run_once_all_modes() {
        let runner = Runner::new(RunnerConfig::quick_test());
        for mode in ExecMode::ALL {
            let r = runner.run_once(&Toy, mode, InputSetting::Low).unwrap();
            assert_eq!(r.workload, "Toy");
            assert!(r.runtime_cycles > 0, "{mode}");
            assert_eq!(r.output.checksum, 42);
            match mode {
                ExecMode::Vanilla => {
                    assert_eq!(r.sgx.ecalls, 0);
                    assert!(r.libos_startup.is_none());
                }
                ExecMode::Native => assert_eq!(r.sgx.ecalls, 1),
                ExecMode::LibOs => {
                    assert!(r.libos_startup.is_some());
                    assert_eq!(r.sgx.ecalls, 0, "startup excluded from measurement");
                }
            }
        }
    }

    #[test]
    fn sgx_modes_slower_than_vanilla() {
        let runner = Runner::new(RunnerConfig::quick_test());
        let v = runner
            .run_once(&Toy, ExecMode::Vanilla, InputSetting::Low)
            .unwrap();
        let n = runner
            .run_once(&Toy, ExecMode::Native, InputSetting::Low)
            .unwrap();
        assert!(n.runtime_cycles > v.runtime_cycles);
    }

    #[test]
    fn repetitions_respected() {
        let mut cfg = RunnerConfig::quick_test();
        cfg.repetitions = 3;
        let runner = Runner::new(cfg);
        let reports = runner
            .run(&Toy, ExecMode::Vanilla, InputSetting::Low)
            .unwrap();
        assert_eq!(reports.len(), 3);
    }

    #[test]
    fn run_modes_covers_supported() {
        let runner = Runner::new(RunnerConfig::quick_test());
        let reports = runner.run_modes(&Toy, InputSetting::Low).unwrap();
        assert_eq!(reports.len(), 3);
        assert_eq!(reports[0].mode, ExecMode::Vanilla);
    }

    /// Computes forever; only a watchdog can stop it.
    struct Unbounded;

    impl Workload for Unbounded {
        fn name(&self) -> &'static str {
            "Unbounded"
        }

        fn property(&self) -> &'static str {
            "test"
        }

        fn supported_modes(&self) -> &'static [ExecMode] {
            &[ExecMode::Vanilla]
        }

        fn spec(&self, _setting: InputSetting) -> WorkloadSpec {
            WorkloadSpec::new(0, "spin")
        }

        fn setup(&self, _env: &mut Env, _setting: InputSetting) -> Result<(), WorkloadError> {
            Ok(())
        }

        fn execute(
            &self,
            env: &mut Env,
            _setting: InputSetting,
        ) -> Result<WorkloadOutput, WorkloadError> {
            loop {
                env.compute(10_000);
            }
        }
    }

    #[test]
    fn watchdog_cancels_unbounded_workload() {
        let runner = Runner::new(RunnerConfig::quick_test()).cell_budget(1_000_000);
        let err = runner
            .run_once(&Unbounded, ExecMode::Vanilla, InputSetting::Low)
            .expect_err("must time out");
        match err {
            WorkloadError::Timeout {
                budget_cycles,
                elapsed_cycles,
            } => {
                assert_eq!(budget_cycles, 1_000_000);
                assert!(elapsed_cycles > 1_000_000);
            }
            other => panic!("expected a timeout, got {other}"),
        }
    }

    #[test]
    fn fault_plan_perturbs_runs_deterministically() {
        let plan = faults::FaultPlan::parse("seed=11,aex=2@30000").unwrap();
        let run = |salt| {
            Runner::new(RunnerConfig::quick_test())
                .faults(plan.clone())
                .run_salted(&Toy, ExecMode::Native, InputSetting::Low, salt)
                .unwrap()
        };
        let a = run(5);
        let b = run(5);
        assert_eq!(a.runtime_cycles, b.runtime_cycles, "same salt, same run");
        assert_eq!(a.sgx, b.sgx);
        let clean = Runner::new(RunnerConfig::quick_test())
            .run_once(&Toy, ExecMode::Native, InputSetting::Low)
            .unwrap();
        assert_eq!(clean.sgx.injected_aex, 0, "no plan, no injection");
    }
}
