//! Parallel sweep execution of the benchmark grid.
//!
//! The paper's methodology is a grid: every workload × execution mode ×
//! input setting, repeated. Each cell is an independent simulation — one
//! [`Env`](crate::Env) owning its own machine — so cells can run on
//! separate OS threads with no shared simulator state. [`SuiteRunner`]
//! fans the grid over a scoped thread pool fed by a work queue, captures
//! per-cell panics (a crashing workload fails one cell, never the sweep),
//! and aggregates results **in grid order**, so a parallel sweep produces
//! byte-identical reports to a sequential one.
//!
//! # Example
//!
//! ```
//! use sgxgauge_core::{RunnerConfig, SuiteRunner, InputSetting};
//! # use sgxgauge_core::{Env, ExecMode, Workload, WorkloadError, WorkloadOutput, WorkloadSpec};
//! # struct Noop;
//! # impl Workload for Noop {
//! #     fn name(&self) -> &'static str { "Noop" }
//! #     fn property(&self) -> &'static str { "test" }
//! #     fn supported_modes(&self) -> &'static [ExecMode] { &[ExecMode::Vanilla] }
//! #     fn spec(&self, _: InputSetting) -> WorkloadSpec { WorkloadSpec::new(4096, "noop") }
//! #     fn setup(&self, _: &mut Env, _: InputSetting) -> Result<(), WorkloadError> { Ok(()) }
//! #     fn execute(&self, env: &mut Env, _: InputSetting) -> Result<WorkloadOutput, WorkloadError> {
//! #         env.compute(1); Ok(WorkloadOutput::default())
//! #     }
//! # }
//! let suite = SuiteRunner::new(RunnerConfig::quick_test()).settings(&[InputSetting::Low]);
//! let sweep = suite.run(&[&Noop]);
//! assert_eq!(sweep.cells.len(), 1);
//! assert!(sweep.cells[0].result.is_ok());
//! ```

use crate::checkpoint::CheckpointSink;
use crate::io::ArtifactError;
use crate::modes::{ExecMode, InputSetting};
use crate::runner::{RunReport, Runner, RunnerConfig};
use crate::workload::{ErrorClass, Workload, WorkloadError};
use faults::FaultPlan;
use sgx_sim::costs::RETRY_BACKOFF_BASE_CYCLES;
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::sync::atomic::{AtomicBool, AtomicUsize, Ordering};
use std::sync::{Arc, Mutex};

/// The optional co-tenancy coordinate of a grid cell: how many tenants
/// shared the EPC while the cell ran, and how many of them were
/// antagonists. Its [`Display`](std::fmt::Display) form `t{N}a{M}`
/// round-trips through [`FromStr`](std::str::FromStr) and appends as a
/// fifth `/`-separated [`CellKey`] field; cells without the dimension
/// keep the legacy four-field form, so v2 checkpoint and report files
/// parse unchanged.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct TenantDim {
    /// Total tenants on the shared host (at least 1).
    pub tenants: u8,
    /// Antagonist tenants among them (at most `tenants - 1`).
    pub antagonists: u8,
}

impl std::fmt::Display for TenantDim {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "t{}a{}", self.tenants, self.antagonists)
    }
}

impl std::str::FromStr for TenantDim {
    type Err = String;

    fn from_str(s: &str) -> Result<Self, Self::Err> {
        let rest = s
            .strip_prefix('t')
            .ok_or_else(|| format!("tenant dimension `{s}` must start with `t`"))?;
        let (tenants, antagonists) = rest
            .split_once('a')
            .ok_or_else(|| format!("tenant dimension `{s}` is missing its `a` separator"))?;
        let tenants = tenants
            .parse::<u8>()
            .map_err(|e| format!("bad tenant count in `{s}`: {e}"))?;
        let antagonists = antagonists
            .parse::<u8>()
            .map_err(|e| format!("bad antagonist count in `{s}`: {e}"))?;
        Ok(TenantDim {
            tenants,
            antagonists,
        })
    }
}

/// The optional distributed-protocol coordinate of a grid cell: how
/// many party enclaves ran the protocol and what the signing quorum
/// threshold was. Its [`Display`](std::fmt::Display) form `p{N}q{T}`
/// round-trips through [`FromStr`](std::str::FromStr) and appends as a
/// trailing `/`-separated [`CellKey`] field; cells without the
/// dimension keep their earlier form, so existing checkpoint and
/// report files parse unchanged.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct PartyDim {
    /// Party enclaves on the relay (at least 2).
    pub parties: u8,
    /// Signing threshold (quorum size, at most `parties`).
    pub threshold: u8,
}

impl std::fmt::Display for PartyDim {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "p{}q{}", self.parties, self.threshold)
    }
}

impl std::str::FromStr for PartyDim {
    type Err = String;

    fn from_str(s: &str) -> Result<Self, Self::Err> {
        let rest = s
            .strip_prefix('p')
            .ok_or_else(|| format!("party dimension `{s}` must start with `p`"))?;
        let (parties, threshold) = rest
            .split_once('q')
            .ok_or_else(|| format!("party dimension `{s}` is missing its `q` separator"))?;
        let parties = parties
            .parse::<u8>()
            .map_err(|e| format!("bad party count in `{s}`: {e}"))?;
        let threshold = threshold
            .parse::<u8>()
            .map_err(|e| format!("bad threshold in `{s}`: {e}"))?;
        Ok(PartyDim { parties, threshold })
    }
}

/// The typed key of one benchmark-grid cell.
///
/// Every layer that used to thread `(workload, mode, setting, rep)`
/// tuples — the sweep queue, checkpoint fingerprints and lookups, report
/// grouping — now passes this one type. Its [`Display`](std::fmt::Display)
/// form `workload/mode/setting/rep` round-trips through
/// [`FromStr`](std::str::FromStr); co-tenant cells append a fifth
/// [`TenantDim`] field (`workload/mode/setting/rep/tNaM`).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct CellKey {
    /// Index into the workload slice passed to [`SuiteRunner::run`].
    pub workload: usize,
    /// Execution mode.
    pub mode: ExecMode,
    /// Input setting.
    pub setting: InputSetting,
    /// Repetition number, `0..repetitions`.
    pub rep: usize,
    /// Co-tenancy coordinate, absent for classic single-enclave cells.
    pub tenant: Option<TenantDim>,
    /// Distributed-protocol coordinate, absent for classic cells.
    pub party: Option<PartyDim>,
}

impl CellKey {
    /// The key of this cell's repetition series: the same coordinate with
    /// `rep` zeroed. All repetitions of one (workload, mode, setting)
    /// share a series key, which is what aggregation groups by.
    #[must_use]
    pub fn series(&self) -> CellKey {
        CellKey { rep: 0, ..*self }
    }
}

impl std::fmt::Display for CellKey {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "{}/{}/{}/{}",
            self.workload, self.mode, self.setting, self.rep
        )?;
        if let Some(t) = self.tenant {
            write!(f, "/{t}")?;
        }
        if let Some(p) = self.party {
            write!(f, "/{p}")?;
        }
        Ok(())
    }
}

impl std::str::FromStr for CellKey {
    type Err = String;

    fn from_str(s: &str) -> Result<Self, Self::Err> {
        let mut parts = s.split('/');
        let mut next = |what: &str| {
            parts
                .next()
                .ok_or_else(|| format!("cell key `{s}` is missing its {what}"))
        };
        let workload = next("workload index")?
            .parse::<usize>()
            .map_err(|e| format!("bad workload index in `{s}`: {e}"))?;
        let mode = next("mode")?.parse::<ExecMode>()?;
        let setting = next("setting")?.parse::<InputSetting>()?;
        let rep = next("repetition")?
            .parse::<usize>()
            .map_err(|e| format!("bad repetition in `{s}`: {e}"))?;
        // Optional trailing dimensions, dispatched by prefix: `t…` is
        // the co-tenancy coordinate, `p…` the party coordinate. Order
        // is fixed (tenant before party) and each appears at most once.
        let mut tenant = None;
        let mut party = None;
        for field in parts {
            if field.starts_with('t') && tenant.is_none() && party.is_none() {
                tenant = Some(field.parse::<TenantDim>()?);
            } else if field.starts_with('p') && party.is_none() {
                party = Some(field.parse::<PartyDim>()?);
            } else {
                return Err(format!("trailing fields in cell key `{s}`"));
            }
        }
        Ok(CellKey {
            workload,
            mode,
            setting,
            rep,
            tenant,
            party,
        })
    }
}

/// How a cell failed — structured, so retry policy and reporting never
/// parse message strings.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum CellErrorKind {
    /// The last attempt failed transiently; the retry budget (if any)
    /// was exhausted without a success.
    Transient,
    /// A deterministic workload error — retrying reproduces it.
    Fatal,
    /// The watchdog cancelled the attempt at its cycle budget.
    TimedOut,
    /// The cell panicked rather than returning an error.
    Panicked,
    /// The cell was never executed: the sweep stopped claiming work
    /// (quarantine threshold exceeded, or a cooperative shutdown was
    /// requested) before this cell's turn. Skipped cells are never
    /// checkpointed, so a resume runs them.
    Skipped,
    /// The cell was deliberately shed by campaign supervision (open
    /// circuit breaker, drained retry budget, blown stage deadline)
    /// rather than executed. Degraded cells are a *decision*, not a
    /// failure: they are deterministic run-to-run and recomputed on
    /// resume instead of being checkpointed.
    Degraded,
}

impl std::fmt::Display for CellErrorKind {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(match self {
            CellErrorKind::Transient => "transient",
            CellErrorKind::Fatal => "fatal",
            CellErrorKind::TimedOut => "timed-out",
            CellErrorKind::Panicked => "panicked",
            CellErrorKind::Skipped => "skipped",
            CellErrorKind::Degraded => "degraded",
        })
    }
}

impl std::str::FromStr for CellErrorKind {
    type Err = String;

    fn from_str(s: &str) -> Result<Self, Self::Err> {
        match s {
            "transient" => Ok(CellErrorKind::Transient),
            "fatal" => Ok(CellErrorKind::Fatal),
            "timed-out" => Ok(CellErrorKind::TimedOut),
            "panicked" => Ok(CellErrorKind::Panicked),
            "skipped" => Ok(CellErrorKind::Skipped),
            "degraded" => Ok(CellErrorKind::Degraded),
            other => Err(format!("unknown cell error kind `{other}`")),
        }
    }
}

/// Why a cell produced no report.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct CellError {
    /// Failure classification (drives retry policy and exit codes).
    pub kind: CellErrorKind,
    /// The workload error's display text, or the panic payload.
    pub message: String,
}

impl CellError {
    /// Classifies a [`WorkloadError`] into a cell outcome.
    pub fn from_workload(e: &WorkloadError) -> Self {
        let kind = match e {
            WorkloadError::Timeout { .. } => CellErrorKind::TimedOut,
            _ => match e.class() {
                ErrorClass::Transient => CellErrorKind::Transient,
                ErrorClass::Fatal => CellErrorKind::Fatal,
            },
        };
        CellError {
            kind,
            message: e.to_string(),
        }
    }

    /// True when the cell panicked rather than returning an error.
    pub fn panicked(&self) -> bool {
        self.kind == CellErrorKind::Panicked
    }

    /// True when this outcome poisons the cell: a deterministic fatal
    /// error or a panic that persisted across the whole retry budget.
    /// Quarantined cells are recorded (with their attempt trail) and
    /// counted against [`SuiteRunner::max_quarantine`] instead of
    /// aborting the sweep.
    pub fn quarantines(&self) -> bool {
        matches!(self.kind, CellErrorKind::Fatal | CellErrorKind::Panicked)
    }
}

impl std::fmt::Display for CellError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "{}: {}", self.kind, self.message)
    }
}

/// One failed attempt in a cell's retry history. The trail records
/// every *non-final* failure (the final outcome lives in
/// [`SweepCell::result`]), so a quarantined cell carries the evidence
/// of what it did on each attempt.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct AttemptFailure {
    /// 1-based attempt ordinal.
    pub attempt: usize,
    /// How that attempt failed.
    pub kind: CellErrorKind,
    /// The attempt's error text.
    pub message: String,
}

/// One executed grid cell: its coordinate plus the outcome.
#[derive(Debug, Clone)]
pub struct SweepCell {
    /// Grid coordinate.
    pub cell: CellKey,
    /// Workload name (kept here so errors stay attributable).
    pub workload: &'static str,
    /// The run's report, or why there is none.
    pub result: Result<RunReport, CellError>,
    /// Attempts executed (1 when the first try settled the cell).
    pub attempts: usize,
    /// Total simulated-cycle backoff accounted across retries (never
    /// slept on the host; purely part of the resilience ledger).
    pub backoff_cycles: u64,
    /// The failures of every non-final attempt, oldest first (empty
    /// when the first attempt settled the cell). Excluded from
    /// [`SweepReport::fingerprint`] so checkpoints that predate trails
    /// still resume fingerprint-identically.
    pub trail: Vec<AttemptFailure>,
}

/// Why a sweep could not produce (or persist) its report.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum SweepError {
    /// The artifact plane failed (checkpoint write, recovery, corrupt
    /// resume file) in a way retries could not fix.
    Artifact(ArtifactError),
    /// More cells were quarantined than [`SuiteRunner::max_quarantine`]
    /// tolerates: the run is globally sick and failed fast. Completed
    /// cells are already checkpointed; a resume re-runs the skipped
    /// remainder.
    QuarantineExceeded {
        /// Number of quarantined (fatal/panicked) cells observed.
        quarantined: usize,
        /// The configured tolerance.
        max: usize,
        /// The quarantined cells themselves, in grid order, so
        /// operators can see *which* cells poisoned the run rather
        /// than just how many.
        cells: Vec<CellKey>,
    },
}

impl std::fmt::Display for SweepError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            SweepError::Artifact(e) => write!(f, "artifact plane failure: {e}"),
            SweepError::QuarantineExceeded {
                quarantined,
                max,
                cells,
            } => {
                write!(
                    f,
                    "sweep is globally sick: {quarantined} cells quarantined \
                     (tolerance {max}); completed cells are checkpointed"
                )?;
                if !cells.is_empty() {
                    let list: Vec<String> = cells.iter().map(|c| c.to_string()).collect();
                    write!(f, " [{}]", list.join(", "))?;
                }
                Ok(())
            }
        }
    }
}

impl std::error::Error for SweepError {}

impl From<ArtifactError> for SweepError {
    fn from(e: ArtifactError) -> Self {
        SweepError::Artifact(e)
    }
}

/// All cells of one sweep, in grid order regardless of how many threads
/// executed them.
#[derive(Debug, Clone, Default)]
pub struct SweepReport {
    /// Executed cells in enumeration order.
    pub cells: Vec<SweepCell>,
}

impl SweepReport {
    /// Successful reports in grid order.
    pub fn reports(&self) -> impl Iterator<Item = &RunReport> {
        self.cells.iter().filter_map(|c| c.result.as_ref().ok())
    }

    /// Failed cells in grid order.
    pub fn errors(&self) -> impl Iterator<Item = (&SweepCell, &CellError)> {
        self.cells
            .iter()
            .filter_map(|c| c.result.as_ref().err().map(|e| (c, e)))
    }

    /// Successful reports of one workload (by grid index), in grid order.
    pub fn reports_of(&self, workload: usize) -> impl Iterator<Item = &RunReport> {
        self.cells
            .iter()
            .filter(move |c| c.cell.workload == workload)
            .filter_map(|c| c.result.as_ref().ok())
    }

    /// Quarantined cells (fatal or panicked past the retry budget), in
    /// grid order.
    pub fn quarantined(&self) -> impl Iterator<Item = (&SweepCell, &CellError)> {
        self.errors().filter(|(_, e)| e.quarantines())
    }

    /// Cells the sweep never executed because it stopped claiming work
    /// (quarantine threshold tripped or shutdown requested).
    pub fn skipped(&self) -> impl Iterator<Item = &SweepCell> {
        self.cells.iter().filter(|c| {
            matches!(
                c.result,
                Err(CellError {
                    kind: CellErrorKind::Skipped,
                    ..
                })
            )
        })
    }

    /// An order-sensitive digest over every cell's identity, counters and
    /// outputs (FNV-1a). Two sweeps that executed the same grid with the
    /// same results — e.g. a sequential and a parallel run — hash equal.
    pub fn fingerprint(&self) -> u64 {
        let mut h = Fnv::new();
        for c in &self.cells {
            h.str(c.workload);
            h.u64(c.cell.workload as u64);
            h.u64(c.cell.mode as u64);
            h.u64(c.cell.setting as u64);
            h.u64(c.cell.rep as u64);
            // Hashed only when present, so classic sweeps (and their v2
            // checkpoints) fingerprint identically to before the
            // dimension existed.
            if let Some(t) = c.cell.tenant {
                h.u64(u64::from(t.tenants));
                h.u64(u64::from(t.antagonists));
            }
            if let Some(p) = c.cell.party {
                h.u64(u64::from(p.parties));
                h.u64(u64::from(p.threshold));
            }
            h.u64(c.attempts as u64);
            h.u64(c.backoff_cycles);
            match &c.result {
                Ok(r) => {
                    h.u64(1);
                    h.u64(r.runtime_cycles);
                    h.u64(r.clock_hz);
                    for (_, v) in r.counters.fields() {
                        h.u64(v);
                    }
                    for (_, v) in r.sgx.fields() {
                        h.u64(v);
                    }
                    h.u64(r.output.ops);
                    h.u64(r.output.checksum);
                    for (name, v) in &r.output.metrics {
                        h.str(name);
                        h.u64(v.to_bits());
                    }
                }
                Err(e) => {
                    h.u64(2);
                    h.str(&e.kind.to_string());
                    h.str(&e.message);
                }
            }
        }
        h.finish()
    }
}

/// FNV-1a, the digest behind [`SweepReport::fingerprint`], the per-cell
/// fault salts and the checkpoint grid guard.
pub(crate) struct Fnv(u64);

impl Fnv {
    pub(crate) fn new() -> Self {
        Fnv(0xcbf2_9ce4_8422_2325)
    }

    fn byte(&mut self, b: u8) {
        self.0 ^= u64::from(b);
        self.0 = self.0.wrapping_mul(0x100_0000_01b3);
    }

    pub(crate) fn u64(&mut self, v: u64) {
        for b in v.to_le_bytes() {
            self.byte(b);
        }
    }

    pub(crate) fn str(&mut self, s: &str) {
        for b in s.as_bytes() {
            self.byte(*b);
        }
        self.byte(0xff); // delimiter
    }

    pub(crate) fn finish(&self) -> u64 {
        self.0
    }
}

/// Fans the benchmark grid across OS threads.
///
/// Construction is builder-style: [`SuiteRunner::new`] covers every mode
/// and setting with the config's repetition count; [`SuiteRunner::modes`],
/// [`SuiteRunner::settings`] and [`SuiteRunner::threads`] narrow or tune.
#[derive(Debug, Clone)]
pub struct SuiteRunner {
    runner: Runner,
    modes: Vec<ExecMode>,
    settings: Vec<InputSetting>,
    threads: usize,
    retries: usize,
    max_quarantine: Option<usize>,
    stop: Option<Arc<AtomicBool>>,
    tenant: Option<TenantDim>,
    party: Option<PartyDim>,
}

impl SuiteRunner {
    /// A sweep over every mode and setting, `cfg.repetitions` times each,
    /// with one worker per available core.
    pub fn new(cfg: RunnerConfig) -> Self {
        SuiteRunner {
            runner: Runner::new(cfg),
            modes: ExecMode::ALL.to_vec(),
            settings: InputSetting::ALL.to_vec(),
            threads: 0,
            retries: 0,
            max_quarantine: None,
            stop: None,
            tenant: None,
            party: None,
        }
    }

    /// Stamps every grid cell with a co-tenancy coordinate: the sweep
    /// itself still runs one workload per cell, but its keys, salts and
    /// fingerprints carry the dimension so co-tenant campaigns checkpoint
    /// and report distinctly from classic runs of the same grid.
    #[must_use]
    pub fn tenant(mut self, dim: TenantDim) -> Self {
        self.tenant = Some(dim);
        self
    }

    /// Stamps every grid cell with a distributed-protocol coordinate,
    /// so party-count × fault-intensity sweeps checkpoint and report
    /// distinctly from classic runs of the same grid.
    #[must_use]
    pub fn party(mut self, dim: PartyDim) -> Self {
        self.party = Some(dim);
        self
    }

    /// Restricts the sweep to `modes` (kept in the given order).
    #[must_use]
    pub fn modes(mut self, modes: &[ExecMode]) -> Self {
        self.modes = modes.to_vec();
        self
    }

    /// Restricts the sweep to `settings` (kept in the given order).
    #[must_use]
    pub fn settings(mut self, settings: &[InputSetting]) -> Self {
        self.settings = settings.to_vec();
        self
    }

    /// Uses exactly `n` worker threads; `0` (the default) means one per
    /// available core.
    #[must_use]
    pub fn threads(mut self, n: usize) -> Self {
        self.threads = n;
        self
    }

    /// Injects faults from `plan` into every cell, salted per cell and
    /// per attempt so retries face a fresh (but deterministic) draw.
    #[must_use]
    pub fn faults(mut self, plan: FaultPlan) -> Self {
        self.runner = self.runner.faults(plan);
        self
    }

    /// Traces every cell (see [`Runner::tracing`]). Each cell owns a
    /// private sink, so traces stay byte-identical no matter how many
    /// worker threads drive the sweep.
    #[must_use]
    pub fn tracing(mut self, cfg: crate::runner::TraceConfig) -> Self {
        self.runner = self.runner.tracing(cfg);
        self
    }

    /// Cancels any cell whose measured region exceeds `cycles` simulated
    /// cycles; the cell fails with [`CellErrorKind::TimedOut`].
    #[must_use]
    pub fn cell_budget(mut self, cycles: u64) -> Self {
        self.runner = self.runner.cell_budget(cycles);
        self
    }

    /// Retries each transiently failing cell up to `n` extra times; the
    /// attempt count and accounted backoff land in the [`SweepCell`].
    #[must_use]
    pub fn retries(mut self, n: usize) -> Self {
        self.retries = n;
        self
    }

    /// The configured retry budget (extra attempts per cell).
    pub fn retry_budget(&self) -> usize {
        self.retries
    }

    /// Tolerates at most `n` quarantined cells before the sweep is
    /// declared globally sick: workers stop claiming cells, the
    /// remainder is marked [`CellErrorKind::Skipped`], and
    /// [`SuiteRunner::try_run`] (and the checkpointed runners) fail
    /// fast with [`SweepError::QuarantineExceeded`].
    #[must_use]
    pub fn max_quarantine(mut self, n: usize) -> Self {
        self.max_quarantine = Some(n);
        self
    }

    /// The configured quarantine tolerance, if any.
    pub fn quarantine_budget(&self) -> Option<usize> {
        self.max_quarantine
    }

    /// Installs a cooperative shutdown flag: once set (e.g. by a signal
    /// handler), workers finish their current cell, stop claiming new
    /// ones, and the sweep returns with the remainder marked
    /// [`CellErrorKind::Skipped`]. Completed cells are already in the
    /// checkpoint, so a later `--resume` continues where the shutdown
    /// left off.
    #[must_use]
    pub fn stop_flag(mut self, flag: Arc<AtomicBool>) -> Self {
        self.stop = Some(flag);
        self
    }

    /// The underlying per-cell runner.
    pub fn runner(&self) -> &Runner {
        &self.runner
    }

    /// Enumerates the grid for `workloads` in canonical order: workload,
    /// then mode (skipping unsupported), then setting, then repetition.
    pub fn grid(&self, workloads: &[&dyn Workload]) -> Vec<CellKey> {
        let reps = self.runner.config().repetitions.max(1);
        let mut cells = Vec::new();
        for (wi, w) in workloads.iter().enumerate() {
            for &mode in &self.modes {
                if !w.supports(mode) {
                    continue;
                }
                for &setting in &self.settings {
                    for rep in 0..reps {
                        cells.push(CellKey {
                            workload: wi,
                            mode,
                            setting,
                            rep,
                            tenant: self.tenant,
                            party: self.party,
                        });
                    }
                }
            }
        }
        cells
    }

    /// Runs the grid across the configured worker threads.
    ///
    /// Each worker pulls the next unclaimed cell off a shared queue,
    /// builds a private [`Env`](crate::Env), and writes the outcome into
    /// the cell's slot, so the report order is the grid order no matter
    /// which thread finished when. A panicking cell is captured into a
    /// [`CellError`] and the sweep continues.
    pub fn run(&self, workloads: &[&dyn Workload]) -> SweepReport {
        self.execute(workloads, self.thread_count())
    }

    /// [`SuiteRunner::run`], but enforcing the quarantine tolerance:
    /// returns [`SweepError::QuarantineExceeded`] when more cells were
    /// quarantined than [`SuiteRunner::max_quarantine`] allows.
    ///
    /// # Errors
    ///
    /// [`SweepError::QuarantineExceeded`] when the run is globally sick.
    pub fn try_run(&self, workloads: &[&dyn Workload]) -> Result<SweepReport, SweepError> {
        let report = self.execute(workloads, self.thread_count());
        self.enforce_quarantine(&report)?;
        Ok(report)
    }

    /// Checks a finished report against the quarantine tolerance.
    pub(crate) fn enforce_quarantine(&self, report: &SweepReport) -> Result<(), SweepError> {
        if let Some(max) = self.max_quarantine {
            let cells: Vec<CellKey> = report.quarantined().map(|(c, _)| c.cell).collect();
            let quarantined = cells.len();
            if quarantined > max {
                return Err(SweepError::QuarantineExceeded {
                    quarantined,
                    max,
                    cells,
                });
            }
        }
        Ok(())
    }

    /// Resolves the configured thread count (`0` → one per core).
    pub(crate) fn thread_count(&self) -> usize {
        if self.threads == 0 {
            std::thread::available_parallelism().map_or(1, |n| n.get())
        } else {
            self.threads
        }
    }

    /// Runs an explicit subset of cells across the configured worker
    /// threads, outcomes in the order the cells were given.
    ///
    /// This is the building block campaign orchestrators schedule waves
    /// with: every cell outcome is a pure function of its (cell,
    /// attempt) fault salt, so the returned vector is byte-identical to
    /// a sequential run of the same cells no matter how workers
    /// interleaved. No quarantine/stop supervision is applied here —
    /// the caller owns cell-level policy.
    pub fn run_cells(&self, workloads: &[&dyn Workload], cells: &[CellKey]) -> Vec<SweepCell> {
        let n = cells.len();
        let threads = self.thread_count().clamp(1, n.max(1));
        let next = AtomicUsize::new(0);
        let slots: Mutex<Vec<Option<SweepCell>>> = Mutex::new((0..n).map(|_| None).collect());
        std::thread::scope(|s| {
            for _ in 0..threads {
                s.spawn(|| loop {
                    let i = next.fetch_add(1, Ordering::Relaxed);
                    if i >= n {
                        break;
                    }
                    let done = self.run_cell(workloads, cells[i]);
                    slots
                        .lock()
                        .expect("no worker holds the lock across a panic")[i] = Some(done);
                });
            }
        });
        slots
            .into_inner()
            .expect("workers finished cleanly")
            .into_iter()
            .enumerate()
            .map(|(i, s)| s.unwrap_or_else(|| skipped_cell(workloads, cells[i])))
            .collect()
    }

    /// Runs the grid on the calling thread, no pool involved — the
    /// reference implementation parallel sweeps must match byte for byte.
    pub fn run_sequential(&self, workloads: &[&dyn Workload]) -> SweepReport {
        let cells = self.grid(workloads);
        let mut out = Vec::with_capacity(cells.len());
        for cell in cells {
            out.push(self.run_cell(workloads, cell));
        }
        SweepReport { cells: out }
    }

    fn execute(&self, workloads: &[&dyn Workload], threads: usize) -> SweepReport {
        self.execute_resumable(workloads, threads, Vec::new(), None)
    }

    /// [`SuiteRunner::execute`] with resume support: `prefilled` slots
    /// (grid index → already-completed cell, from a checkpoint) are not
    /// re-run, and every freshly completed cell is offered to `sink`
    /// before the sweep moves on.
    pub(crate) fn execute_resumable(
        &self,
        workloads: &[&dyn Workload],
        threads: usize,
        prefilled: Vec<(usize, SweepCell)>,
        sink: Option<&CheckpointSink<'_>>,
    ) -> SweepReport {
        let cells = self.grid(workloads);
        let n = cells.len();
        let threads = threads.clamp(1, n.max(1));
        let next = AtomicUsize::new(0);
        let mut initial: Vec<Option<SweepCell>> = (0..n).map(|_| None).collect();
        let mut skip = vec![false; n];
        let mut seeded_quarantine = 0usize;
        for (i, cell) in prefilled {
            if let Err(e) = &cell.result {
                if e.quarantines() {
                    seeded_quarantine += 1;
                }
            }
            skip[i] = true;
            initial[i] = Some(cell);
        }
        let quarantined = AtomicUsize::new(seeded_quarantine);
        let sick = AtomicBool::new(
            self.max_quarantine
                .is_some_and(|max| seeded_quarantine > max),
        );
        let slots: Mutex<Vec<Option<SweepCell>>> = Mutex::new(initial);
        std::thread::scope(|s| {
            for _ in 0..threads {
                s.spawn(|| loop {
                    if sick.load(Ordering::Relaxed) || self.stop_requested() {
                        break;
                    }
                    let i = next.fetch_add(1, Ordering::Relaxed);
                    if i >= n {
                        break;
                    }
                    if skip[i] {
                        continue;
                    }
                    let done = self.run_cell(workloads, cells[i]);
                    if let Err(e) = &done.result {
                        if e.quarantines() {
                            let q = quarantined.fetch_add(1, Ordering::Relaxed) + 1;
                            if self.max_quarantine.is_some_and(|max| q > max) {
                                sick.store(true, Ordering::Relaxed);
                            }
                        }
                    }
                    if let Some(sink) = sink {
                        sink.record(i, &done);
                    }
                    slots
                        .lock()
                        .expect("no worker holds the lock across a panic")[i] = Some(done);
                });
            }
        });
        // Unclaimed slots (the sweep went sick or was asked to stop)
        // become Skipped cells: enumerated in the report, absent from
        // the checkpoint, re-run on resume.
        let out = slots
            .into_inner()
            .expect("workers finished cleanly")
            .into_iter()
            .enumerate()
            .map(|(i, s)| s.unwrap_or_else(|| skipped_cell(workloads, cells[i])))
            .collect();
        SweepReport { cells: out }
    }

    fn stop_requested(&self) -> bool {
        self.stop
            .as_ref()
            .is_some_and(|f| f.load(Ordering::Relaxed))
    }

    /// Executes one cell, retrying transient failures within the retry
    /// budget and converting errors and panics into the outcome.
    fn run_cell(&self, workloads: &[&dyn Workload], cell: CellKey) -> SweepCell {
        let w = workloads[cell.workload];
        let max_attempts = self.retries + 1;
        let mut attempts = 0;
        let mut backoff_cycles = 0u64;
        let mut trail: Vec<AttemptFailure> = Vec::new();
        let result = loop {
            attempts += 1;
            let salt = attempt_salt(w.name(), &cell, attempts);
            let outcome = catch_unwind(AssertUnwindSafe(|| {
                self.runner.run_salted(w, cell.mode, cell.setting, salt)
            }));
            let err = match outcome {
                Ok(Ok(report)) => break Ok(report),
                Ok(Err(e)) => CellError::from_workload(&e),
                Err(payload) => CellError {
                    kind: CellErrorKind::Panicked,
                    message: panic_text(payload.as_ref()),
                },
            };
            if err.kind == CellErrorKind::Transient && attempts < max_attempts {
                // Deterministic exponential backoff, accounted in
                // simulated cycles — the sweep never sleeps on the host.
                // The doubling saturates: past attempt 64 the shift alone
                // would be UB, and the ledger must pin at u64::MAX rather
                // than wrap the cycle clock back toward zero.
                let step = 1u64
                    .checked_shl((attempts - 1).min(64) as u32)
                    .map_or(u64::MAX, |exp| {
                        RETRY_BACKOFF_BASE_CYCLES.saturating_mul(exp)
                    });
                backoff_cycles = backoff_cycles.saturating_add(step);
                trail.push(AttemptFailure {
                    attempt: attempts,
                    kind: err.kind,
                    message: err.message,
                });
                continue;
            }
            // Exhausted (or not retryable): the LAST error is the
            // cell's outcome — it reflects the freshest fault draw.
            break Err(err);
        };
        SweepCell {
            cell,
            workload: w.name(),
            result,
            attempts,
            backoff_cycles,
            trail,
        }
    }
}

/// The placeholder for a cell the sweep never claimed.
fn skipped_cell(workloads: &[&dyn Workload], cell: CellKey) -> SweepCell {
    SweepCell {
        cell,
        workload: workloads[cell.workload].name(),
        result: Err(CellError {
            kind: CellErrorKind::Skipped,
            message: "sweep stopped before this cell was executed".to_string(),
        }),
        attempts: 0,
        backoff_cycles: 0,
        trail: Vec::new(),
    }
}

/// The per-attempt fault salt: a digest of the cell coordinate and the
/// attempt ordinal, so every (cell, attempt) pair sees a distinct but
/// reproducible fault stream regardless of worker scheduling.
fn attempt_salt(name: &str, cell: &CellKey, attempt: usize) -> u64 {
    let mut h = Fnv::new();
    h.str(name);
    h.u64(cell.workload as u64);
    h.u64(cell.mode as u64);
    h.u64(cell.setting as u64);
    h.u64(cell.rep as u64);
    // Only co-tenant cells fold the dimension in, so classic cells keep
    // their historical fault streams.
    if let Some(t) = cell.tenant {
        h.u64(u64::from(t.tenants));
        h.u64(u64::from(t.antagonists));
    }
    if let Some(p) = cell.party {
        h.u64(u64::from(p.parties));
        h.u64(u64::from(p.threshold));
    }
    h.u64(attempt as u64);
    h.finish()
}

fn panic_text(payload: &(dyn std::any::Any + Send)) -> String {
    if let Some(s) = payload.downcast_ref::<&str>() {
        (*s).to_owned()
    } else if let Some(s) = payload.downcast_ref::<String>() {
        s.clone()
    } else {
        "opaque panic payload".to_owned()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::env::{Env, Placement};
    use crate::workload::{WorkloadError, WorkloadOutput, WorkloadSpec};

    /// Deterministic workload touching protected memory.
    struct Stream;

    impl Workload for Stream {
        fn name(&self) -> &'static str {
            "Stream"
        }

        fn property(&self) -> &'static str {
            "test"
        }

        fn supported_modes(&self) -> &'static [ExecMode] {
            &[ExecMode::Vanilla, ExecMode::Native]
        }

        fn spec(&self, _setting: InputSetting) -> WorkloadSpec {
            WorkloadSpec::new(1 << 20, "stream")
        }

        fn setup(&self, _env: &mut Env, _setting: InputSetting) -> Result<(), WorkloadError> {
            Ok(())
        }

        fn execute(
            &self,
            env: &mut Env,
            setting: InputSetting,
        ) -> Result<WorkloadOutput, WorkloadError> {
            let len: u64 = match setting {
                InputSetting::Low => 64 << 10,
                InputSetting::Medium => 128 << 10,
                InputSetting::High => 256 << 10,
            };
            let r = env.alloc(len, Placement::Protected)?;
            env.secure_call(|env| {
                let mut sum = 0u64;
                for i in 0..len / 64 {
                    env.write_u64(r, i * 64, i);
                    sum = sum.wrapping_add(env.read_u64(r, i * 64));
                }
                Ok::<u64, WorkloadError>(sum)
            })??;
            Ok(WorkloadOutput {
                ops: len / 64,
                checksum: 7,
                metrics: vec![],
            })
        }
    }

    /// Panics in `execute` for Native mode only.
    struct FaultyNative;

    impl Workload for FaultyNative {
        fn name(&self) -> &'static str {
            "FaultyNative"
        }

        fn property(&self) -> &'static str {
            "test"
        }

        fn supported_modes(&self) -> &'static [ExecMode] {
            &[ExecMode::Vanilla, ExecMode::Native]
        }

        fn spec(&self, _setting: InputSetting) -> WorkloadSpec {
            WorkloadSpec::new(1 << 20, "faulty")
        }

        fn setup(&self, _env: &mut Env, _setting: InputSetting) -> Result<(), WorkloadError> {
            Ok(())
        }

        fn execute(
            &self,
            env: &mut Env,
            _setting: InputSetting,
        ) -> Result<WorkloadOutput, WorkloadError> {
            if env.mode() == ExecMode::Native {
                panic!("injected failure");
            }
            env.compute(10);
            Ok(WorkloadOutput {
                ops: 1,
                checksum: 1,
                metrics: vec![],
            })
        }
    }

    fn suite() -> SuiteRunner {
        let mut cfg = RunnerConfig::quick_test();
        cfg.repetitions = 2;
        SuiteRunner::new(cfg).settings(&[InputSetting::Low, InputSetting::Medium])
    }

    #[test]
    fn grid_enumerates_in_canonical_order() {
        let s = suite();
        let grid = s.grid(&[&Stream]);
        // 2 supported modes x 2 settings x 2 reps.
        assert_eq!(grid.len(), 8);
        assert_eq!(
            grid[0],
            CellKey {
                workload: 0,
                mode: ExecMode::Vanilla,
                setting: InputSetting::Low,
                rep: 0,
                tenant: None,
                party: None,
            }
        );
        assert_eq!(grid[1].rep, 1);
        assert_eq!(grid[2].setting, InputSetting::Medium);
        assert_eq!(grid[4].mode, ExecMode::Native);
    }

    #[test]
    fn parallel_matches_sequential_exactly() {
        let s = suite();
        let seq = s.run_sequential(&[&Stream]);
        let par = s.clone().threads(4).run(&[&Stream]);
        assert_eq!(seq.cells.len(), par.cells.len());
        assert_eq!(
            seq.fingerprint(),
            par.fingerprint(),
            "parallel sweep must be byte-identical"
        );
        for (a, b) in seq.cells.iter().zip(par.cells.iter()) {
            assert_eq!(a.cell, b.cell, "grid order must be preserved");
        }
    }

    #[test]
    fn panicking_cell_is_isolated() {
        let s = suite().threads(2);
        let sweep = s.run(&[&Stream, &FaultyNative]);
        assert_eq!(sweep.cells.len(), 16);
        let errors: Vec<_> = sweep.errors().collect();
        // FaultyNative panics in Native mode: 2 settings x 2 reps.
        assert_eq!(errors.len(), 4);
        for (cell, err) in &errors {
            assert_eq!(cell.workload, "FaultyNative");
            assert_eq!(cell.cell.mode, ExecMode::Native);
            assert!(err.panicked());
            assert_eq!(err.kind, CellErrorKind::Panicked);
            assert!(err.message.contains("injected failure"));
            assert_eq!(cell.attempts, 1, "panics are not retried");
        }
        // Every other cell still produced a report.
        assert_eq!(sweep.reports().count(), 12);
    }

    #[test]
    fn fingerprint_detects_result_differences() {
        let s = suite();
        let a = s.run_sequential(&[&Stream]);
        let mut b = s.run_sequential(&[&Stream]);
        assert_eq!(
            a.fingerprint(),
            b.fingerprint(),
            "simulation must be deterministic"
        );
        if let Ok(r) = &mut b.cells[0].result {
            r.runtime_cycles += 1;
        }
        assert_ne!(a.fingerprint(), b.fingerprint());
    }

    #[test]
    fn unsupported_modes_are_skipped_not_errored() {
        let s = suite().modes(&[ExecMode::LibOs]);
        let sweep = s.run(&[&Stream]);
        assert!(sweep.cells.is_empty(), "Stream does not support LibOS");
    }

    /// Fails transiently a fixed number of times, then succeeds. Only
    /// meaningful in single-threaded sweeps (interior counter).
    struct Flaky {
        remaining: std::sync::atomic::AtomicUsize,
    }

    impl Flaky {
        fn failing(n: usize) -> Self {
            Flaky {
                remaining: std::sync::atomic::AtomicUsize::new(n),
            }
        }
    }

    impl Workload for Flaky {
        fn name(&self) -> &'static str {
            "Flaky"
        }

        fn property(&self) -> &'static str {
            "test"
        }

        fn supported_modes(&self) -> &'static [ExecMode] {
            &[ExecMode::Vanilla]
        }

        fn spec(&self, _setting: InputSetting) -> WorkloadSpec {
            WorkloadSpec::new(0, "flaky")
        }

        fn setup(&self, _env: &mut Env, _setting: InputSetting) -> Result<(), WorkloadError> {
            Ok(())
        }

        fn execute(
            &self,
            env: &mut Env,
            _setting: InputSetting,
        ) -> Result<WorkloadOutput, WorkloadError> {
            env.compute(100);
            let left = self.remaining.load(Ordering::SeqCst);
            if left > 0 {
                self.remaining.store(left - 1, Ordering::SeqCst);
                return Err(crate::workload::TransientError::SyscallFailed {
                    at_cycles: env.elapsed_cycles(),
                }
                .into());
            }
            Ok(WorkloadOutput {
                ops: 1,
                checksum: 9,
                metrics: vec![],
            })
        }
    }

    fn tiny_suite() -> SuiteRunner {
        SuiteRunner::new(RunnerConfig::quick_test())
            .modes(&[ExecMode::Vanilla])
            .settings(&[InputSetting::Low])
    }

    #[test]
    fn transient_failures_retry_until_success() {
        let w = Flaky::failing(2);
        let sweep = tiny_suite().retries(3).run_sequential(&[&w]);
        assert_eq!(sweep.cells.len(), 1);
        let cell = &sweep.cells[0];
        assert!(cell.result.is_ok(), "{:?}", cell.result);
        assert_eq!(cell.attempts, 3, "two failures, then success");
        // base << 0 + base << 1 accounted for the two retries.
        assert_eq!(cell.backoff_cycles, 3 * RETRY_BACKOFF_BASE_CYCLES);
    }

    #[test]
    fn retry_exhaustion_keeps_the_last_error() {
        let w = Flaky::failing(usize::MAX);
        let sweep = tiny_suite().retries(1).run_sequential(&[&w]);
        let cell = &sweep.cells[0];
        let err = cell.result.as_ref().unwrap_err();
        assert_eq!(err.kind, CellErrorKind::Transient);
        assert!(err.message.contains("syscall"), "{}", err.message);
        assert_eq!(cell.attempts, 2, "one retry, then exhaustion");
        assert_eq!(cell.backoff_cycles, RETRY_BACKOFF_BASE_CYCLES);
    }

    #[test]
    fn backoff_accounting_saturates_at_the_doubling_boundary() {
        // 80 retries push the doubling well past both overflow points:
        // base * 2^k exceeds u64::MAX around k = 50, and the shift
        // itself would be UB at k = 64. The ledger must pin at
        // u64::MAX instead of wrapping (or aborting) the cycle clock.
        let w = Flaky::failing(usize::MAX);
        let sweep = tiny_suite().retries(80).run_sequential(&[&w]);
        let cell = &sweep.cells[0];
        assert_eq!(cell.attempts, 81);
        assert_eq!(cell.backoff_cycles, u64::MAX, "saturated, not wrapped");

        // Just below the base*2^k overflow boundary the exact doubling
        // sum still holds: sum_{k=0}^{attempts-2} base << k.
        let w = Flaky::failing(usize::MAX);
        let sweep = tiny_suite().retries(10).run_sequential(&[&w]);
        let cell = &sweep.cells[0];
        assert_eq!(
            cell.backoff_cycles,
            RETRY_BACKOFF_BASE_CYCLES * ((1u64 << 10) - 1),
            "exact geometric sum below the saturation boundary"
        );
    }

    /// Always fails deterministically.
    struct Broken;

    impl Workload for Broken {
        fn name(&self) -> &'static str {
            "Broken"
        }

        fn property(&self) -> &'static str {
            "test"
        }

        fn supported_modes(&self) -> &'static [ExecMode] {
            &[ExecMode::Vanilla]
        }

        fn spec(&self, _setting: InputSetting) -> WorkloadSpec {
            WorkloadSpec::new(0, "broken")
        }

        fn setup(&self, _env: &mut Env, _setting: InputSetting) -> Result<(), WorkloadError> {
            Ok(())
        }

        fn execute(
            &self,
            _env: &mut Env,
            _setting: InputSetting,
        ) -> Result<WorkloadOutput, WorkloadError> {
            Err(WorkloadError::Validation("always wrong".into()))
        }
    }

    #[test]
    fn fatal_errors_are_not_retried() {
        let sweep = tiny_suite().retries(5).run_sequential(&[&Broken]);
        let cell = &sweep.cells[0];
        let err = cell.result.as_ref().unwrap_err();
        assert_eq!(err.kind, CellErrorKind::Fatal);
        assert_eq!(cell.attempts, 1);
        assert_eq!(cell.backoff_cycles, 0);
    }

    #[test]
    fn cell_error_kind_display_round_trips() {
        for kind in [
            CellErrorKind::Transient,
            CellErrorKind::Fatal,
            CellErrorKind::TimedOut,
            CellErrorKind::Panicked,
            CellErrorKind::Skipped,
            CellErrorKind::Degraded,
        ] {
            let shown = kind.to_string();
            assert_eq!(shown.parse::<CellErrorKind>().unwrap(), kind);
        }
        assert!("weird".parse::<CellErrorKind>().is_err());
    }

    #[test]
    fn retry_trail_records_every_non_final_failure() {
        let w = Flaky::failing(2);
        let sweep = tiny_suite().retries(3).run_sequential(&[&w]);
        let cell = &sweep.cells[0];
        assert!(cell.result.is_ok());
        assert_eq!(
            cell.trail.len(),
            2,
            "two transient failures preceded success"
        );
        assert_eq!(cell.trail[0].attempt, 1);
        assert_eq!(cell.trail[1].attempt, 2);
        assert!(cell
            .trail
            .iter()
            .all(|a| a.kind == CellErrorKind::Transient));
    }

    fn broken_suite(reps: usize) -> SuiteRunner {
        let mut cfg = RunnerConfig::quick_test();
        cfg.repetitions = reps;
        SuiteRunner::new(cfg)
            .modes(&[ExecMode::Vanilla])
            .settings(&[InputSetting::Low])
            .threads(1)
    }

    #[test]
    fn quarantine_threshold_fails_fast_and_skips_the_remainder() {
        let s = broken_suite(4).max_quarantine(0);
        let err = s.try_run(&[&Broken]).unwrap_err();
        match err {
            SweepError::QuarantineExceeded {
                quarantined,
                max,
                cells,
            } => {
                assert_eq!(quarantined, 1);
                assert_eq!(max, 0);
                assert_eq!(cells.len(), 1, "the poisoned cell is enumerated");
                assert_eq!(cells[0].to_string(), "0/Vanilla/Low/0");
            }
            other => panic!("expected QuarantineExceeded, got {other:?}"),
        }
        // The report (via the non-failing path) enumerates both the
        // quarantined cell and the skipped remainder.
        let report = s.run(&[&Broken]);
        assert_eq!(report.quarantined().count(), 1);
        assert_eq!(
            report.skipped().count(),
            3,
            "one worker stops after first quarantine"
        );
    }

    #[test]
    fn quarantine_within_tolerance_completes_the_sweep() {
        let s = broken_suite(3).max_quarantine(3);
        let report = s.try_run(&[&Broken]).expect("within tolerance");
        assert_eq!(report.quarantined().count(), 3);
        assert_eq!(report.skipped().count(), 0);
    }

    #[test]
    fn stop_flag_skips_unclaimed_cells() {
        let flag = Arc::new(AtomicBool::new(true));
        let s = broken_suite(4).stop_flag(Arc::clone(&flag));
        let report = s.run(&[&Broken]);
        assert_eq!(report.skipped().count(), 4, "pre-set flag skips everything");
        flag.store(false, Ordering::Relaxed);
        let report = s.run(&[&Broken]);
        assert_eq!(report.skipped().count(), 0);
    }
}
