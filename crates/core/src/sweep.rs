//! Parallel sweep execution of the benchmark grid.
//!
//! The paper's methodology is a grid: every workload × execution mode ×
//! input setting, repeated. Each cell is an independent simulation — one
//! [`Env`](crate::Env) owning its own machine — so cells can run on
//! separate OS threads with no shared simulator state. [`SuiteRunner`]
//! fans the grid over a scoped thread pool fed by a work queue, captures
//! per-cell panics (a crashing workload fails one cell, never the sweep),
//! and aggregates results **in grid order**, so a parallel sweep produces
//! byte-identical reports to a sequential one.
//!
//! # Example
//!
//! ```
//! use sgxgauge_core::{RunnerConfig, SuiteRunner, InputSetting};
//! # use sgxgauge_core::{Env, ExecMode, Workload, WorkloadError, WorkloadOutput, WorkloadSpec};
//! # struct Noop;
//! # impl Workload for Noop {
//! #     fn name(&self) -> &'static str { "Noop" }
//! #     fn property(&self) -> &'static str { "test" }
//! #     fn supported_modes(&self) -> &'static [ExecMode] { &[ExecMode::Vanilla] }
//! #     fn spec(&self, _: InputSetting) -> WorkloadSpec { WorkloadSpec::new(4096, "noop") }
//! #     fn setup(&self, _: &mut Env, _: InputSetting) -> Result<(), WorkloadError> { Ok(()) }
//! #     fn execute(&self, env: &mut Env, _: InputSetting) -> Result<WorkloadOutput, WorkloadError> {
//! #         env.compute(1); Ok(WorkloadOutput::default())
//! #     }
//! # }
//! let suite = SuiteRunner::new(RunnerConfig::quick_test()).settings(&[InputSetting::Low]);
//! let sweep = suite.run(&[&Noop]);
//! assert_eq!(sweep.cells.len(), 1);
//! assert!(sweep.cells[0].result.is_ok());
//! ```

use crate::modes::{ExecMode, InputSetting};
use crate::runner::{RunReport, Runner, RunnerConfig};
use crate::workload::Workload;
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::Mutex;

/// One coordinate of the benchmark grid, in enumeration order.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct GridCell {
    /// Index into the workload slice passed to [`SuiteRunner::run`].
    pub workload: usize,
    /// Execution mode.
    pub mode: ExecMode,
    /// Input setting.
    pub setting: InputSetting,
    /// Repetition number, `0..repetitions`.
    pub rep: usize,
}

/// Why a cell produced no report.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct CellError {
    /// The workload error's display text, or the panic payload.
    pub message: String,
    /// True when the cell panicked rather than returning an error.
    pub panicked: bool,
}

impl std::fmt::Display for CellError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        if self.panicked {
            write!(f, "panicked: {}", self.message)
        } else {
            write!(f, "{}", self.message)
        }
    }
}

/// One executed grid cell: its coordinate plus the outcome.
#[derive(Debug, Clone)]
pub struct SweepCell {
    /// Grid coordinate.
    pub cell: GridCell,
    /// Workload name (kept here so errors stay attributable).
    pub workload: &'static str,
    /// The run's report, or why there is none.
    pub result: Result<RunReport, CellError>,
}

/// All cells of one sweep, in grid order regardless of how many threads
/// executed them.
#[derive(Debug, Clone, Default)]
pub struct SweepReport {
    /// Executed cells in enumeration order.
    pub cells: Vec<SweepCell>,
}

impl SweepReport {
    /// Successful reports in grid order.
    pub fn reports(&self) -> impl Iterator<Item = &RunReport> {
        self.cells.iter().filter_map(|c| c.result.as_ref().ok())
    }

    /// Failed cells in grid order.
    pub fn errors(&self) -> impl Iterator<Item = (&SweepCell, &CellError)> {
        self.cells
            .iter()
            .filter_map(|c| c.result.as_ref().err().map(|e| (c, e)))
    }

    /// Successful reports of one workload (by grid index), in grid order.
    pub fn reports_of(&self, workload: usize) -> impl Iterator<Item = &RunReport> {
        self.cells
            .iter()
            .filter(move |c| c.cell.workload == workload)
            .filter_map(|c| c.result.as_ref().ok())
    }

    /// An order-sensitive digest over every cell's identity, counters and
    /// outputs (FNV-1a). Two sweeps that executed the same grid with the
    /// same results — e.g. a sequential and a parallel run — hash equal.
    pub fn fingerprint(&self) -> u64 {
        let mut h = Fnv::new();
        for c in &self.cells {
            h.str(c.workload);
            h.u64(c.cell.workload as u64);
            h.u64(c.cell.mode as u64);
            h.u64(c.cell.setting as u64);
            h.u64(c.cell.rep as u64);
            match &c.result {
                Ok(r) => {
                    h.u64(1);
                    h.u64(r.runtime_cycles);
                    h.u64(r.clock_hz);
                    for (_, v) in r.counters.fields() {
                        h.u64(v);
                    }
                    for (_, v) in r.sgx.fields() {
                        h.u64(v);
                    }
                    h.u64(r.output.ops);
                    h.u64(r.output.checksum);
                    for (name, v) in &r.output.metrics {
                        h.str(name);
                        h.u64(v.to_bits());
                    }
                }
                Err(e) => {
                    h.u64(2);
                    h.str(&e.message);
                    h.u64(u64::from(e.panicked));
                }
            }
        }
        h.finish()
    }
}

/// FNV-1a, the digest behind [`SweepReport::fingerprint`].
struct Fnv(u64);

impl Fnv {
    fn new() -> Self {
        Fnv(0xcbf2_9ce4_8422_2325)
    }

    fn byte(&mut self, b: u8) {
        self.0 ^= u64::from(b);
        self.0 = self.0.wrapping_mul(0x100_0000_01b3);
    }

    fn u64(&mut self, v: u64) {
        for b in v.to_le_bytes() {
            self.byte(b);
        }
    }

    fn str(&mut self, s: &str) {
        for b in s.as_bytes() {
            self.byte(*b);
        }
        self.byte(0xff); // delimiter
    }

    fn finish(&self) -> u64 {
        self.0
    }
}

/// Fans the benchmark grid across OS threads.
///
/// Construction is builder-style: [`SuiteRunner::new`] covers every mode
/// and setting with the config's repetition count; [`SuiteRunner::modes`],
/// [`SuiteRunner::settings`] and [`SuiteRunner::threads`] narrow or tune.
#[derive(Debug, Clone)]
pub struct SuiteRunner {
    runner: Runner,
    modes: Vec<ExecMode>,
    settings: Vec<InputSetting>,
    threads: usize,
}

impl SuiteRunner {
    /// A sweep over every mode and setting, `cfg.repetitions` times each,
    /// with one worker per available core.
    pub fn new(cfg: RunnerConfig) -> Self {
        SuiteRunner {
            runner: Runner::new(cfg),
            modes: ExecMode::ALL.to_vec(),
            settings: InputSetting::ALL.to_vec(),
            threads: 0,
        }
    }

    /// Restricts the sweep to `modes` (kept in the given order).
    #[must_use]
    pub fn modes(mut self, modes: &[ExecMode]) -> Self {
        self.modes = modes.to_vec();
        self
    }

    /// Restricts the sweep to `settings` (kept in the given order).
    #[must_use]
    pub fn settings(mut self, settings: &[InputSetting]) -> Self {
        self.settings = settings.to_vec();
        self
    }

    /// Uses exactly `n` worker threads; `0` (the default) means one per
    /// available core.
    #[must_use]
    pub fn threads(mut self, n: usize) -> Self {
        self.threads = n;
        self
    }

    /// The underlying per-cell runner.
    pub fn runner(&self) -> &Runner {
        &self.runner
    }

    /// Enumerates the grid for `workloads` in canonical order: workload,
    /// then mode (skipping unsupported), then setting, then repetition.
    pub fn grid(&self, workloads: &[&dyn Workload]) -> Vec<GridCell> {
        let reps = self.runner.config().repetitions.max(1);
        let mut cells = Vec::new();
        for (wi, w) in workloads.iter().enumerate() {
            for &mode in &self.modes {
                if !w.supports(mode) {
                    continue;
                }
                for &setting in &self.settings {
                    for rep in 0..reps {
                        cells.push(GridCell {
                            workload: wi,
                            mode,
                            setting,
                            rep,
                        });
                    }
                }
            }
        }
        cells
    }

    /// Runs the grid across the configured worker threads.
    ///
    /// Each worker pulls the next unclaimed cell off a shared queue,
    /// builds a private [`Env`](crate::Env), and writes the outcome into
    /// the cell's slot, so the report order is the grid order no matter
    /// which thread finished when. A panicking cell is captured into a
    /// [`CellError`] and the sweep continues.
    pub fn run(&self, workloads: &[&dyn Workload]) -> SweepReport {
        let threads = if self.threads == 0 {
            std::thread::available_parallelism().map_or(1, |n| n.get())
        } else {
            self.threads
        };
        self.execute(workloads, threads)
    }

    /// Runs the grid on the calling thread, no pool involved — the
    /// reference implementation parallel sweeps must match byte for byte.
    pub fn run_sequential(&self, workloads: &[&dyn Workload]) -> SweepReport {
        let cells = self.grid(workloads);
        let mut out = Vec::with_capacity(cells.len());
        for cell in cells {
            out.push(self.run_cell(workloads, cell));
        }
        SweepReport { cells: out }
    }

    fn execute(&self, workloads: &[&dyn Workload], threads: usize) -> SweepReport {
        let cells = self.grid(workloads);
        let n = cells.len();
        let threads = threads.clamp(1, n.max(1));
        let next = AtomicUsize::new(0);
        let slots: Mutex<Vec<Option<SweepCell>>> = Mutex::new((0..n).map(|_| None).collect());
        std::thread::scope(|s| {
            for _ in 0..threads {
                s.spawn(|| loop {
                    let i = next.fetch_add(1, Ordering::Relaxed);
                    if i >= n {
                        break;
                    }
                    let done = self.run_cell(workloads, cells[i]);
                    slots
                        .lock()
                        .expect("no worker holds the lock across a panic")[i] = Some(done);
                });
            }
        });
        let cells = slots
            .into_inner()
            .expect("workers finished cleanly")
            .into_iter()
            .map(|s| s.expect("every queue index was claimed and filled"))
            .collect();
        SweepReport { cells }
    }

    /// Executes one cell, converting errors and panics into the outcome.
    fn run_cell(&self, workloads: &[&dyn Workload], cell: GridCell) -> SweepCell {
        let w = workloads[cell.workload];
        let outcome = catch_unwind(AssertUnwindSafe(|| {
            self.runner.run_once(w, cell.mode, cell.setting)
        }));
        let result = match outcome {
            Ok(Ok(report)) => Ok(report),
            Ok(Err(e)) => Err(CellError {
                message: e.to_string(),
                panicked: false,
            }),
            Err(payload) => Err(CellError {
                message: panic_text(payload.as_ref()),
                panicked: true,
            }),
        };
        SweepCell {
            cell,
            workload: w.name(),
            result,
        }
    }
}

fn panic_text(payload: &(dyn std::any::Any + Send)) -> String {
    if let Some(s) = payload.downcast_ref::<&str>() {
        (*s).to_owned()
    } else if let Some(s) = payload.downcast_ref::<String>() {
        s.clone()
    } else {
        "opaque panic payload".to_owned()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::env::{Env, Placement};
    use crate::workload::{WorkloadError, WorkloadOutput, WorkloadSpec};

    /// Deterministic workload touching protected memory.
    struct Stream;

    impl Workload for Stream {
        fn name(&self) -> &'static str {
            "Stream"
        }

        fn property(&self) -> &'static str {
            "test"
        }

        fn supported_modes(&self) -> &'static [ExecMode] {
            &[ExecMode::Vanilla, ExecMode::Native]
        }

        fn spec(&self, _setting: InputSetting) -> WorkloadSpec {
            WorkloadSpec::new(1 << 20, "stream")
        }

        fn setup(&self, _env: &mut Env, _setting: InputSetting) -> Result<(), WorkloadError> {
            Ok(())
        }

        fn execute(
            &self,
            env: &mut Env,
            setting: InputSetting,
        ) -> Result<WorkloadOutput, WorkloadError> {
            let len: u64 = match setting {
                InputSetting::Low => 64 << 10,
                InputSetting::Medium => 128 << 10,
                InputSetting::High => 256 << 10,
            };
            let r = env.alloc(len, Placement::Protected)?;
            env.secure_call(|env| {
                let mut sum = 0u64;
                for i in 0..len / 64 {
                    env.write_u64(r, i * 64, i);
                    sum = sum.wrapping_add(env.read_u64(r, i * 64));
                }
                Ok::<u64, WorkloadError>(sum)
            })??;
            Ok(WorkloadOutput {
                ops: len / 64,
                checksum: 7,
                metrics: vec![],
            })
        }
    }

    /// Panics in `execute` for Native mode only.
    struct FaultyNative;

    impl Workload for FaultyNative {
        fn name(&self) -> &'static str {
            "FaultyNative"
        }

        fn property(&self) -> &'static str {
            "test"
        }

        fn supported_modes(&self) -> &'static [ExecMode] {
            &[ExecMode::Vanilla, ExecMode::Native]
        }

        fn spec(&self, _setting: InputSetting) -> WorkloadSpec {
            WorkloadSpec::new(1 << 20, "faulty")
        }

        fn setup(&self, _env: &mut Env, _setting: InputSetting) -> Result<(), WorkloadError> {
            Ok(())
        }

        fn execute(
            &self,
            env: &mut Env,
            _setting: InputSetting,
        ) -> Result<WorkloadOutput, WorkloadError> {
            if env.mode() == ExecMode::Native {
                panic!("injected failure");
            }
            env.compute(10);
            Ok(WorkloadOutput {
                ops: 1,
                checksum: 1,
                metrics: vec![],
            })
        }
    }

    fn suite() -> SuiteRunner {
        let mut cfg = RunnerConfig::quick_test();
        cfg.repetitions = 2;
        SuiteRunner::new(cfg).settings(&[InputSetting::Low, InputSetting::Medium])
    }

    #[test]
    fn grid_enumerates_in_canonical_order() {
        let s = suite();
        let grid = s.grid(&[&Stream]);
        // 2 supported modes x 2 settings x 2 reps.
        assert_eq!(grid.len(), 8);
        assert_eq!(
            grid[0],
            GridCell {
                workload: 0,
                mode: ExecMode::Vanilla,
                setting: InputSetting::Low,
                rep: 0
            }
        );
        assert_eq!(grid[1].rep, 1);
        assert_eq!(grid[2].setting, InputSetting::Medium);
        assert_eq!(grid[4].mode, ExecMode::Native);
    }

    #[test]
    fn parallel_matches_sequential_exactly() {
        let s = suite();
        let seq = s.run_sequential(&[&Stream]);
        let par = s.clone().threads(4).run(&[&Stream]);
        assert_eq!(seq.cells.len(), par.cells.len());
        assert_eq!(
            seq.fingerprint(),
            par.fingerprint(),
            "parallel sweep must be byte-identical"
        );
        for (a, b) in seq.cells.iter().zip(par.cells.iter()) {
            assert_eq!(a.cell, b.cell, "grid order must be preserved");
        }
    }

    #[test]
    fn panicking_cell_is_isolated() {
        let s = suite().threads(2);
        let sweep = s.run(&[&Stream, &FaultyNative]);
        assert_eq!(sweep.cells.len(), 16);
        let errors: Vec<_> = sweep.errors().collect();
        // FaultyNative panics in Native mode: 2 settings x 2 reps.
        assert_eq!(errors.len(), 4);
        for (cell, err) in &errors {
            assert_eq!(cell.workload, "FaultyNative");
            assert_eq!(cell.cell.mode, ExecMode::Native);
            assert!(err.panicked);
            assert!(err.message.contains("injected failure"));
        }
        // Every other cell still produced a report.
        assert_eq!(sweep.reports().count(), 12);
    }

    #[test]
    fn fingerprint_detects_result_differences() {
        let s = suite();
        let a = s.run_sequential(&[&Stream]);
        let mut b = s.run_sequential(&[&Stream]);
        assert_eq!(
            a.fingerprint(),
            b.fingerprint(),
            "simulation must be deterministic"
        );
        if let Ok(r) = &mut b.cells[0].result {
            r.runtime_cycles += 1;
        }
        assert_ne!(a.fingerprint(), b.fingerprint());
    }

    #[test]
    fn unsupported_modes_are_skipped_not_errored() {
        let s = suite().modes(&[ExecMode::LibOs]);
        let sweep = s.run(&[&Stream]);
        assert!(sweep.cells.is_empty(), "Stream does not support LibOS");
    }
}
