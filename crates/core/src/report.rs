//! Report generation: the paper's ratio tables and CSV emission.

use crate::emit::{Emitter, Format};
use crate::modes::{ExecMode, InputSetting};
use crate::runner::RunReport;
use crate::sweep::SweepReport;
use gauge_stats::{geomean, ratio, Summary};
use std::fmt;
use std::path::Path;

/// The counter ratios the paper tabulates (Table 4 columns).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct RatioRow {
    /// Runtime overhead (×).
    pub overhead: f64,
    /// dTLB-miss ratio (×).
    pub dtlb_misses: f64,
    /// Page-walk-cycle ratio (×).
    pub walk_cycles: f64,
    /// Stall-cycle ratio (×).
    pub stall_cycles: f64,
    /// LLC-miss ratio (×).
    pub llc_misses: f64,
    /// Page-fault ratio (×).
    pub page_faults: f64,
    /// Absolute EPC evictions of the numerator run.
    pub epc_evictions: u64,
    /// Absolute EPC load-backs of the numerator run.
    pub epc_loadbacks: u64,
}

impl RatioRow {
    /// Ratios of `a` (e.g. a Native run) over `b` (e.g. Vanilla).
    pub fn from_reports(a: &RunReport, b: &RunReport) -> RatioRow {
        RatioRow {
            overhead: ratio(a.runtime_cycles as f64, b.runtime_cycles as f64),
            dtlb_misses: ratio(a.counters.dtlb_misses as f64, b.counters.dtlb_misses as f64),
            walk_cycles: ratio(a.counters.walk_cycles as f64, b.counters.walk_cycles as f64),
            stall_cycles: ratio(
                a.counters.stall_cycles as f64,
                b.counters.stall_cycles as f64,
            ),
            llc_misses: ratio(a.counters.llc_misses as f64, b.counters.llc_misses as f64),
            // On real SGX every EPC fault reaches the OS as a page fault,
            // which is how `perf` counts them (paper B.3/B.4); fold the
            // EPC faults into the page-fault numerators.
            page_faults: ratio(
                (a.counters.page_faults + a.sgx.epc_faults) as f64,
                (b.counters.page_faults + b.sgx.epc_faults) as f64,
            ),
            epc_evictions: a.sgx.epc_evictions,
            epc_loadbacks: a.sgx.epc_loadbacks,
        }
    }

    /// Geometric mean over a set of rows, field-wise (how the paper
    /// aggregates "6 workloads" / "10 workloads" into one Table 4 line).
    /// Zero-valued entries are clamped to a tiny positive value so the
    /// geomean stays defined.
    pub fn geomean_of(rows: &[RatioRow]) -> RatioRow {
        fn g(vals: Vec<f64>) -> f64 {
            let clamped: Vec<f64> = vals.into_iter().map(|v| v.max(1e-6)).collect();
            geomean(&clamped)
        }
        RatioRow {
            overhead: g(rows.iter().map(|r| r.overhead).collect()),
            dtlb_misses: g(rows.iter().map(|r| r.dtlb_misses).collect()),
            walk_cycles: g(rows.iter().map(|r| r.walk_cycles).collect()),
            stall_cycles: g(rows.iter().map(|r| r.stall_cycles).collect()),
            llc_misses: g(rows.iter().map(|r| r.llc_misses).collect()),
            page_faults: g(rows.iter().map(|r| r.page_faults).collect()),
            epc_evictions: (rows.iter().map(|r| r.epc_evictions).sum::<u64>())
                / rows.len().max(1) as u64,
            epc_loadbacks: (rows.iter().map(|r| r.epc_loadbacks).sum::<u64>())
                / rows.len().max(1) as u64,
        }
    }
}

impl fmt::Display for RatioRow {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{:>6.2}x {:>8.2}x {:>8.2}x {:>8.2}x {:>7.2}x {:>9.1} K",
            self.overhead,
            self.dtlb_misses,
            self.walk_cycles,
            self.stall_cycles,
            self.llc_misses,
            self.epc_evictions as f64 / 1_000.0,
        )
    }
}

/// Repetitions of one (workload, mode, setting) grid group, aggregated
/// the way the paper aggregates runs (geometric means via `gauge_stats`).
#[derive(Debug, Clone)]
pub struct SweepGroup {
    /// Workload name.
    pub workload: &'static str,
    /// Execution mode.
    pub mode: ExecMode,
    /// Input setting.
    pub setting: InputSetting,
    /// Successful repetitions.
    pub reps: usize,
    /// Failed repetitions.
    pub failures: usize,
    /// Runtime-cycle statistics over the successful repetitions; `None`
    /// when every repetition failed.
    pub runtime_cycles: Option<Summary>,
    /// EPC-fault statistics over the successful repetitions.
    pub epc_faults: Option<Summary>,
}

/// Aggregates a sweep's repetitions per (workload, mode, setting), in
/// grid order. Repetitions are consecutive in a [`SweepReport`], so the
/// grouping is a single pass.
pub fn aggregate_sweep(sweep: &SweepReport) -> Vec<SweepGroup> {
    let mut groups: Vec<SweepGroup> = Vec::new();
    let mut runtimes: Vec<f64> = Vec::new();
    let mut faults: Vec<f64> = Vec::new();
    let mut flush = |g: &mut Option<SweepGroup>, runtimes: &mut Vec<f64>, faults: &mut Vec<f64>| {
        if let Some(mut group) = g.take() {
            if !runtimes.is_empty() {
                group.runtime_cycles = Some(Summary::of(runtimes));
                group.epc_faults = Some(Summary::of(faults));
            }
            runtimes.clear();
            faults.clear();
            groups.push(group);
        }
    };
    let mut current: Option<SweepGroup> = None;
    let mut current_key = None;
    for cell in &sweep.cells {
        // All repetitions of one (workload, mode, setting) share a
        // series key, so consecutive reps fold into one group.
        let key = cell.cell.series();
        if current_key != Some(key) {
            flush(&mut current, &mut runtimes, &mut faults);
            current_key = Some(key);
            current = Some(SweepGroup {
                workload: cell.workload,
                mode: cell.cell.mode,
                setting: cell.cell.setting,
                reps: 0,
                failures: 0,
                runtime_cycles: None,
                epc_faults: None,
            });
        }
        let group = current.as_mut().expect("group initialized above");
        match &cell.result {
            Ok(r) => {
                group.reps += 1;
                // Clamp to 1 so the geometric mean stays defined for
                // degenerate zero-cycle runs.
                runtimes.push(r.runtime_cycles.max(1) as f64);
                faults.push(r.sgx.epc_faults.max(1) as f64);
            }
            Err(_) => group.failures += 1,
        }
    }
    flush(&mut current, &mut runtimes, &mut faults);
    groups
}

/// Renders a sweep as the suite's summary table: one row per
/// (workload, mode, setting) with geomean runtime and fault statistics.
pub fn sweep_table(title: &str, sweep: &SweepReport) -> ReportTable {
    let mut table = ReportTable::new(
        title,
        &[
            "workload",
            "mode",
            "setting",
            "reps",
            "runtime(gm)",
            "epc_faults(gm)",
            "status",
        ],
    );
    for g in aggregate_sweep(sweep) {
        let (runtime, faults) = match (&g.runtime_cycles, &g.epc_faults) {
            (Some(rt), Some(pf)) => (humanize(rt.geomean as u64), humanize(pf.geomean as u64)),
            _ => ("-".to_owned(), "-".to_owned()),
        };
        let status = if g.failures == 0 {
            "ok".to_owned()
        } else {
            format!("{} failed", g.failures)
        };
        table.push_row(vec![
            g.workload.to_owned(),
            g.mode.to_string(),
            g.setting.to_string(),
            g.reps.to_string(),
            runtime,
            faults,
            status,
        ]);
    }
    table
}

/// Renders the sweep's poisoned cells: one row per quarantined or
/// skipped cell with its typed grid key, error class, attempt count and
/// condensed attempt trail — the supervisor's evidence table. Empty
/// when the sweep is healthy.
pub fn quarantine_table(sweep: &SweepReport) -> ReportTable {
    let mut table = ReportTable::new(
        "Quarantined cells",
        &["cell", "workload", "class", "attempts", "error", "trail"],
    );
    let poisoned = sweep.quarantined().chain(
        sweep
            .skipped()
            .filter_map(|c| c.result.as_ref().err().map(|e| (c, e))),
    );
    for (cell, err) in poisoned {
        let trail = cell
            .trail
            .iter()
            .map(|a| format!("#{} {}: {}", a.attempt, a.kind, a.message))
            .collect::<Vec<_>>()
            .join("; ");
        table.push_row(vec![
            cell.cell.to_string(),
            cell.workload.to_owned(),
            err.kind.to_string(),
            cell.attempts.to_string(),
            err.message.clone(),
            trail,
        ]);
    }
    table
}

/// A generic printable/CSV-able table.
#[derive(Debug, Clone, Default)]
pub struct ReportTable {
    /// Table title.
    pub title: String,
    /// Column headers.
    pub headers: Vec<String>,
    /// Rows of cells.
    pub rows: Vec<Vec<String>>,
}

impl ReportTable {
    /// Creates an empty table.
    pub fn new(title: &str, headers: &[&str]) -> Self {
        ReportTable {
            title: title.to_owned(),
            headers: headers.iter().map(|s| (*s).to_owned()).collect(),
            rows: Vec::new(),
        }
    }

    /// Appends a row.
    ///
    /// # Panics
    ///
    /// Panics if the cell count does not match the headers.
    pub fn push_row(&mut self, cells: Vec<String>) {
        assert_eq!(cells.len(), self.headers.len(), "row width mismatch");
        self.rows.push(cells);
    }

    /// Writes the table as CSV to `path`, creating parent directories.
    /// Thin wrapper over the shared [`Emitter`] path (atomic publish).
    ///
    /// # Errors
    ///
    /// Propagates I/O failures.
    pub fn write_csv(&self, path: &Path) -> std::io::Result<()> {
        self.emit(path).map_err(std::io::Error::other)
    }
}

impl Emitter for ReportTable {
    fn format(&self) -> Format {
        Format::Csv
    }

    fn render(&self) -> String {
        let mut out = String::new();
        out.push_str(&self.headers.join(","));
        out.push('\n');
        for row in &self.rows {
            out.push_str(&row.join(","));
            out.push('\n');
        }
        out
    }
}

impl fmt::Display for ReportTable {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        // Column widths.
        let mut widths: Vec<usize> = self.headers.iter().map(|h| h.len()).collect();
        for row in &self.rows {
            for (i, c) in row.iter().enumerate() {
                widths[i] = widths[i].max(c.len());
            }
        }
        writeln!(f, "== {} ==", self.title)?;
        let fmt_row = |cells: &[String]| -> String {
            cells
                .iter()
                .enumerate()
                .map(|(i, c)| format!("{:>w$}", c, w = widths[i]))
                .collect::<Vec<_>>()
                .join("  ")
        };
        writeln!(f, "{}", fmt_row(&self.headers))?;
        writeln!(
            f,
            "{}",
            "-".repeat(widths.iter().sum::<usize>() + 2 * (widths.len() - 1))
        )?;
        for row in &self.rows {
            writeln!(f, "{}", fmt_row(row))?;
        }
        Ok(())
    }
}

/// Where a run's cycles went: the decomposition behind the paper's
/// "three sources of overheads" framing (§1 — encryption, OS services,
/// paging). Categories are cycle totals summed over all threads, so for
/// multi-threaded runs they can exceed the elapsed wall-clock (which is
/// the max over thread clocks).
pub fn cycle_breakdown(r: &RunReport) -> Vec<(&'static str, u64)> {
    vec![
        ("compute", r.counters.compute_cycles),
        ("memory_stalls", r.counters.stall_cycles),
        ("page_walks", r.counters.walk_cycles),
        ("transitions", r.sgx.transition_cycles),
        ("epc_faults", r.sgx.fault_cycles),
    ]
}

/// Formats a count the way the paper does ("21.5 K", "1,792 K", "3.1 M").
pub fn humanize(n: u64) -> String {
    if n >= 10_000_000 {
        format!("{:.1} M", n as f64 / 1e6)
    } else if n >= 1_000 {
        format!("{:.1} K", n as f64 / 1e3)
    } else {
        n.to_string()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::modes::{ExecMode, InputSetting};
    use crate::workload::WorkloadOutput;
    use mem_sim::Counters;
    use sgx_sim::{DriverStats, SgxCounters};

    fn report(runtime: u64, dtlb: u64, evict: u64) -> RunReport {
        let counters = Counters {
            dtlb_misses: dtlb,
            walk_cycles: dtlb * 10,
            stall_cycles: dtlb * 20,
            llc_misses: dtlb / 2,
            page_faults: 5,
            ..Default::default()
        };
        let sgx = SgxCounters {
            epc_evictions: evict,
            ..Default::default()
        };
        RunReport {
            workload: "t",
            mode: ExecMode::Native,
            setting: InputSetting::Low,
            runtime_cycles: runtime,
            counters,
            sgx,
            driver: DriverStats::new(),
            libos_startup: None,
            clock_hz: 3_800_000_000,
            output: WorkloadOutput::default(),
            timeline: Vec::new(),
            phases: Vec::new(),
            trace: None,
        }
    }

    #[test]
    fn ratio_row_divides() {
        let a = report(200, 80, 1000);
        let b = report(100, 10, 0);
        let r = RatioRow::from_reports(&a, &b);
        assert_eq!(r.overhead, 2.0);
        assert_eq!(r.dtlb_misses, 8.0);
        assert_eq!(r.epc_evictions, 1000);
    }

    #[test]
    fn geomean_of_rows() {
        let a = report(200, 20, 100);
        let b = report(100, 10, 0);
        let r1 = RatioRow::from_reports(&a, &b); // 2x
        let a2 = report(800, 80, 300);
        let r2 = RatioRow::from_reports(&a2, &b); // 8x
        let g = RatioRow::geomean_of(&[r1, r2]);
        assert!((g.overhead - 4.0).abs() < 1e-9);
        assert_eq!(g.epc_evictions, 200);
    }

    #[test]
    fn table_prints_and_csvs() {
        let mut t = ReportTable::new("Demo", &["a", "b"]);
        t.push_row(vec!["1".into(), "2".into()]);
        let s = t.to_string();
        assert!(s.contains("Demo") && s.contains('1'));
        let dir = std::env::temp_dir().join("sgxgauge-test-report");
        let path = dir.join("t.csv");
        t.write_csv(&path).unwrap();
        let content = std::fs::read_to_string(&path).unwrap();
        assert_eq!(content, "a,b\n1,2\n");
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    #[should_panic]
    fn ragged_row_rejected() {
        let mut t = ReportTable::new("Demo", &["a", "b"]);
        t.push_row(vec!["1".into()]);
    }

    #[test]
    fn breakdown_covers_categories() {
        let mut r = report(1_000, 10, 0);
        r.counters.compute_cycles = 400;
        r.sgx.transition_cycles = 100;
        r.sgx.fault_cycles = 50;
        let b = cycle_breakdown(&r);
        assert_eq!(b.len(), 5);
        assert_eq!(b[0], ("compute", 400));
        assert_eq!(b[3], ("transitions", 100));
        assert_eq!(b[4], ("epc_faults", 50));
    }

    #[test]
    fn humanize_scales() {
        assert_eq!(humanize(999), "999");
        assert_eq!(humanize(21_500), "21.5 K");
        assert_eq!(humanize(12_500_000), "12.5 M");
    }

    fn sweep_of(cells: Vec<(u64, Result<u64, &str>)>) -> SweepReport {
        use crate::sweep::{CellError, CellErrorKind, CellKey, SweepCell};
        SweepReport {
            cells: cells
                .into_iter()
                .map(|(rep, result)| SweepCell {
                    cell: CellKey {
                        workload: 0,
                        mode: ExecMode::Native,
                        setting: InputSetting::Low,
                        rep: rep as usize,
                        tenant: None,
                        party: None,
                    },
                    attempts: 1,
                    backoff_cycles: 0,
                    trail: Vec::new(),
                    workload: "t",
                    result: match result {
                        Ok(rt) => {
                            let mut r = report(rt, 10, 0);
                            r.sgx.epc_faults = 4;
                            Ok(r)
                        }
                        Err(m) => Err(CellError {
                            kind: CellErrorKind::Fatal,
                            message: m.to_owned(),
                        }),
                    },
                })
                .collect(),
        }
    }

    #[test]
    fn quarantine_table_enumerates_poisoned_cells() {
        let sweep = sweep_of(vec![(0, Ok(100)), (1, Err("deterministic boom"))]);
        let t = quarantine_table(&sweep);
        assert_eq!(t.rows.len(), 1);
        assert_eq!(t.rows[0][2], "fatal");
        assert!(t.rows[0][4].contains("deterministic boom"));
        let healthy = sweep_of(vec![(0, Ok(100))]);
        assert!(quarantine_table(&healthy).rows.is_empty());
    }

    #[test]
    fn aggregate_sweep_geomeans_repetitions() {
        let sweep = sweep_of(vec![(0, Ok(100)), (1, Ok(400))]);
        let groups = aggregate_sweep(&sweep);
        assert_eq!(groups.len(), 1);
        let g = &groups[0];
        assert_eq!((g.reps, g.failures), (2, 0));
        let rt = g.runtime_cycles.as_ref().unwrap();
        assert!((rt.geomean - 200.0).abs() < 1e-9, "geomean of 100 and 400");
        assert_eq!(rt.n, 2);
    }

    #[test]
    fn aggregate_sweep_counts_failures() {
        let sweep = sweep_of(vec![(0, Ok(100)), (1, Err("boom"))]);
        let g = &aggregate_sweep(&sweep)[0];
        assert_eq!((g.reps, g.failures), (1, 1));
        assert!(
            g.runtime_cycles.is_some(),
            "surviving reps still summarized"
        );
        let table = sweep_table("Sweep", &sweep);
        assert_eq!(table.rows.len(), 1);
        assert!(table.rows[0].last().unwrap().contains("1 failed"));
    }

    #[test]
    fn aggregate_sweep_all_failed_group_has_no_summary() {
        let sweep = sweep_of(vec![(0, Err("a")), (1, Err("b"))]);
        let g = &aggregate_sweep(&sweep)[0];
        assert_eq!((g.reps, g.failures), (0, 2));
        assert!(g.runtime_cycles.is_none());
        let table = sweep_table("Sweep", &sweep);
        assert!(table.rows[0].contains(&"-".to_owned()));
    }
}
