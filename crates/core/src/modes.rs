//! Execution modes and input settings (Table 1 of the paper).

use std::fmt;

/// How a workload is executed with respect to SGX.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub enum ExecMode {
    /// Without Intel SGX support.
    Vanilla,
    /// Ported to SGX: the sensitive kernel runs in an enclave, reached
    /// via ECALLs; I/O leaves via OCALLs.
    Native,
    /// Shimmed: the unmodified application runs under a library OS
    /// (GrapheneSGX analogue) inside one big enclave.
    LibOs,
}

impl ExecMode {
    /// All modes, in the paper's presentation order.
    pub const ALL: [ExecMode; 3] = [ExecMode::Vanilla, ExecMode::Native, ExecMode::LibOs];
}

impl fmt::Display for ExecMode {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ExecMode::Vanilla => write!(f, "Vanilla"),
            ExecMode::Native => write!(f, "Native"),
            ExecMode::LibOs => write!(f, "LibOS"),
        }
    }
}

impl std::str::FromStr for ExecMode {
    type Err = String;

    /// Case-insensitive parse of the paper spelling (`Vanilla`, `Native`,
    /// `LibOS`) and the CLI's lowercase forms.
    fn from_str(s: &str) -> Result<Self, Self::Err> {
        match s.to_ascii_lowercase().as_str() {
            "vanilla" => Ok(ExecMode::Vanilla),
            "native" => Ok(ExecMode::Native),
            "libos" => Ok(ExecMode::LibOs),
            other => Err(format!("unknown mode `{other}`")),
        }
    }
}

/// Input sizing relative to the EPC (Table 1): Low (< EPC), Medium
/// (≈ EPC), High (> EPC).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub enum InputSetting {
    /// Memory footprint below the EPC size.
    Low,
    /// Memory footprint around the EPC size.
    Medium,
    /// Memory footprint above the EPC size.
    High,
}

impl InputSetting {
    /// All settings, smallest first.
    pub const ALL: [InputSetting; 3] =
        [InputSetting::Low, InputSetting::Medium, InputSetting::High];
}

impl fmt::Display for InputSetting {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            InputSetting::Low => write!(f, "Low"),
            InputSetting::Medium => write!(f, "Medium"),
            InputSetting::High => write!(f, "High"),
        }
    }
}

impl std::str::FromStr for InputSetting {
    type Err = String;

    /// Case-insensitive parse of `Low`/`Medium`/`High`.
    fn from_str(s: &str) -> Result<Self, Self::Err> {
        match s.to_ascii_lowercase().as_str() {
            "low" => Ok(InputSetting::Low),
            "medium" => Ok(InputSetting::Medium),
            "high" => Ok(InputSetting::High),
            other => Err(format!("unknown setting `{other}`")),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_parse_round_trips() {
        for mode in ExecMode::ALL {
            assert_eq!(mode.to_string().parse::<ExecMode>().unwrap(), mode);
        }
        for setting in InputSetting::ALL {
            assert_eq!(
                setting.to_string().parse::<InputSetting>().unwrap(),
                setting
            );
        }
        assert!("sgx2".parse::<ExecMode>().is_err());
        assert!("tiny".parse::<InputSetting>().is_err());
    }

    #[test]
    fn display_names_match_paper() {
        assert_eq!(ExecMode::LibOs.to_string(), "LibOS");
        assert_eq!(InputSetting::Medium.to_string(), "Medium");
    }

    #[test]
    fn orderings() {
        assert!(InputSetting::Low < InputSetting::High);
        assert_eq!(ExecMode::ALL.len(), 3);
        assert_eq!(InputSetting::ALL.len(), 3);
    }
}
