//! SGXGauge core: the benchmark-suite harness.
//!
//! This crate is the paper's primary contribution as a library: a
//! framework for running diverse workloads against Intel SGX in the three
//! execution modes of Table 1 —
//!
//! * **Vanilla** — no SGX; the workload runs on the bare machine model,
//! * **Native**  — the workload's sensitive kernel is ported into an
//!   enclave and reached via ECALLs,
//! * **LibOS**   — the unmodified workload runs entirely inside a
//!   Graphene-like library OS (see [`libos_sim`]),
//!
//! under the three input settings of Table 1 (Low < EPC, Medium ≈ EPC,
//! High > EPC), collecting the performance counters the paper analyses.
//!
//! Workloads implement [`Workload`] and program against [`Env`], which
//! routes memory accesses, file and network I/O, secure calls and logical
//! threads through the right substrate for the current mode. [`Runner`]
//! executes (workload × mode × setting) combinations and produces
//! [`RunReport`]s; [`SuiteRunner`] fans whole grids of combinations
//! across OS threads with deterministic, grid-ordered aggregation; and
//! [`report`] turns groups of reports into the paper's ratio tables and
//! CSV files.
//!
//! # Example
//!
//! ```
//! use sgxgauge_core::{Env, EnvConfig, ExecMode, InputSetting};
//! use sgxgauge_core::env::Placement;
//!
//! let mut env = Env::new(EnvConfig::quick_test(ExecMode::Vanilla)).unwrap();
//! let region = env.alloc(4096, Placement::Protected).unwrap();
//! env.write_u64(region, 0, 42);
//! assert_eq!(env.read_u64(region, 0), 42);
//! ```

#![forbid(unsafe_code)]
#![deny(missing_docs)]

pub mod checkpoint;
pub mod emit;
pub mod env;
pub mod io;
pub mod modes;
pub mod report;
pub mod runner;
pub mod sweep;
pub mod workload;

pub use checkpoint::{load_checkpoint, Checkpoint, CHECKPOINT_VERSION, OLDEST_LOADABLE_VERSION};
pub use emit::{Emitter, Format};
pub use env::{Env, EnvConfig, Region, SimThread};
pub use io::{ArtifactError, ArtifactIo, ChaosFs, IoErrorKind, RealFs, RecoveryReport};
pub use modes::{ExecMode, InputSetting};
pub use report::{RatioRow, ReportTable};
pub use runner::{RunReport, Runner, RunnerConfig, TraceConfig};
pub use sweep::{
    CellError, CellErrorKind, CellKey, PartyDim, SuiteRunner, SweepCell, SweepError, SweepReport,
    TenantDim,
};
pub use workload::{
    ErrorClass, TransientError, Workload, WorkloadError, WorkloadOutput, WorkloadSpec,
};
