//! The [`Workload`] trait and its supporting types.

use crate::env::Env;
use crate::modes::{ExecMode, InputSetting};
use sgx_sim::SgxError;
use std::error::Error;
use std::fmt;

/// A failure that is expected to go away on retry: the condition was
/// injected (or environmental), not a property of the workload or its
/// inputs. The sweep executor retries these within its retry budget.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum TransientError {
    /// A host syscall failed transiently (EINTR/EAGAIN analogue).
    SyscallFailed {
        /// Thread clock when the syscall failed.
        at_cycles: u64,
    },
    /// A file read came back corrupted (bit rot, torn write); the sealed
    /// MAC or a consistency check caught it.
    IoCorruption {
        /// The affected file.
        file: String,
    },
}

impl fmt::Display for TransientError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            TransientError::SyscallFailed { at_cycles } => {
                write!(f, "host syscall failed at cycle {at_cycles}")
            }
            TransientError::IoCorruption { file } => {
                write!(f, "corrupted read from `{file}`")
            }
        }
    }
}

/// Retry classification of a [`WorkloadError`]: would the same cell
/// plausibly succeed if run again?
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ErrorClass {
    /// Environmental; a retry with a fresh fault draw may succeed.
    Transient,
    /// Deterministic; retrying reproduces the failure.
    Fatal,
}

impl fmt::Display for ErrorClass {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(match self {
            ErrorClass::Transient => "transient",
            ErrorClass::Fatal => "fatal",
        })
    }
}

impl std::str::FromStr for ErrorClass {
    type Err = String;

    fn from_str(s: &str) -> Result<Self, Self::Err> {
        match s {
            "transient" => Ok(ErrorClass::Transient),
            "fatal" => Ok(ErrorClass::Fatal),
            other => Err(format!("unknown error class `{other}`")),
        }
    }
}

/// Errors surfaced by workloads and the environment.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum WorkloadError {
    /// An SGX-level failure (TCS exhaustion, enclave memory, …).
    Sgx(SgxError),
    /// A missing input file.
    FileNotFound(String),
    /// The workload's self-validation failed (wrong result).
    Validation(String),
    /// A retry-worthy environmental failure (see [`TransientError`]).
    Transient(TransientError),
    /// The run exceeded its cycle budget and was cancelled.
    Timeout {
        /// The configured budget.
        budget_cycles: u64,
        /// The thread clock when the watchdog fired.
        elapsed_cycles: u64,
    },
    /// The workload misused the phase-span tracing API (mismatched or
    /// unclosed [`Env::phase`](crate::Env::phase) spans). Deterministic —
    /// the same workload mismatches its spans on every run.
    Trace(trace::TraceError),
    /// A distributed workload lost its signing quorum: live parties fell
    /// below the threshold. Deterministic for a given fault plan and
    /// salt, so retrying reproduces the loss.
    QuorumLost {
        /// Parties still live when the protocol aborted.
        live: u32,
        /// The configured signing threshold.
        threshold: u32,
    },
    /// Anything else, described.
    Other(String),
}

impl WorkloadError {
    /// Classifies the error for retry decisions — structured, so no
    /// caller ever has to parse a message string.
    pub fn class(&self) -> ErrorClass {
        match self {
            WorkloadError::Transient(_) => ErrorClass::Transient,
            _ => ErrorClass::Fatal,
        }
    }
}

impl fmt::Display for WorkloadError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            WorkloadError::Sgx(e) => write!(f, "sgx error: {e}"),
            WorkloadError::FileNotFound(n) => write!(f, "file not found: {n}"),
            WorkloadError::Validation(m) => write!(f, "validation failed: {m}"),
            WorkloadError::Transient(t) => write!(f, "transient: {t}"),
            WorkloadError::Timeout {
                budget_cycles,
                elapsed_cycles,
            } => write!(
                f,
                "cycle budget exceeded: {elapsed_cycles} of {budget_cycles} allowed"
            ),
            WorkloadError::Trace(e) => write!(f, "trace misuse: {e}"),
            WorkloadError::QuorumLost { live, threshold } => write!(
                f,
                "quorum lost: {live} live parties < threshold {threshold}"
            ),
            WorkloadError::Other(m) => write!(f, "{m}"),
        }
    }
}

impl From<trace::TraceError> for WorkloadError {
    fn from(e: trace::TraceError) -> Self {
        WorkloadError::Trace(e)
    }
}

impl From<TransientError> for WorkloadError {
    fn from(e: TransientError) -> Self {
        WorkloadError::Transient(e)
    }
}

impl Error for WorkloadError {
    fn source(&self) -> Option<&(dyn Error + 'static)> {
        match self {
            WorkloadError::Sgx(e) => Some(e),
            WorkloadError::Trace(e) => Some(e),
            _ => None,
        }
    }
}

impl From<SgxError> for WorkloadError {
    fn from(e: SgxError) -> Self {
        WorkloadError::Sgx(e)
    }
}

/// Static description of one (workload, setting) combination, the analog
/// of a row slice of Table 2.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct WorkloadSpec {
    /// Estimated bytes of protected (in-enclave) memory the run needs;
    /// the runner sizes Native-mode enclaves from this.
    pub protected_bytes: u64,
    /// Human-readable parameter summary (e.g. "Elements 1 M").
    pub params: String,
}

impl WorkloadSpec {
    /// Convenience constructor.
    pub fn new(protected_bytes: u64, params: impl Into<String>) -> Self {
        WorkloadSpec {
            protected_bytes,
            params: params.into(),
        }
    }
}

/// What a workload produced: a validation checksum plus metrics.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct WorkloadOutput {
    /// Number of application-level operations completed (requests,
    /// lookups, hashes …) for throughput/latency derivations.
    pub ops: u64,
    /// A deterministic checksum of the computed result, so every mode can
    /// be cross-checked against Vanilla.
    pub checksum: u64,
    /// Named metrics specific to the workload (e.g. mean request latency
    /// in cycles for Lighttpd).
    pub metrics: Vec<(String, f64)>,
}

impl WorkloadOutput {
    /// Looks up a named metric.
    pub fn metric(&self, name: &str) -> Option<f64> {
        self.metrics
            .iter()
            .find(|(n, _)| n == name)
            .map(|&(_, v)| v)
    }
}

/// A benchmark in the SGXGauge suite.
///
/// Implementations are stateless descriptions; all mutable state lives in
/// the [`Env`]. `setup` prepares inputs (unmeasured), `execute` is the
/// measured region. The `Send + Sync` bounds let the parallel sweep
/// executor ([`crate::sweep`]) share workload descriptions across worker
/// threads; stateless descriptions satisfy them trivially.
pub trait Workload: Send + Sync {
    /// Workload name as the paper spells it (e.g. "BTree").
    fn name(&self) -> &'static str;

    /// The property column of Table 2 (e.g. "Data/CPU-intensive").
    fn property(&self) -> &'static str;

    /// Modes this workload supports (Table 2: four of the ten run only
    /// under Vanilla + LibOS).
    fn supported_modes(&self) -> &'static [ExecMode];

    /// Sizing for `setting`.
    fn spec(&self, setting: InputSetting) -> WorkloadSpec;

    /// Prepares inputs (writes input files, etc.). Runs unmeasured,
    /// outside the enclave.
    ///
    /// # Errors
    ///
    /// Returns a [`WorkloadError`] when preparation fails.
    fn setup(&self, env: &mut Env, setting: InputSetting) -> Result<(), WorkloadError>;

    /// The measured execution.
    ///
    /// # Errors
    ///
    /// Returns a [`WorkloadError`] when the run fails or self-validation
    /// does not pass.
    fn execute(
        &self,
        env: &mut Env,
        setting: InputSetting,
    ) -> Result<WorkloadOutput, WorkloadError>;

    /// Whether `mode` is supported.
    fn supports(&self, mode: ExecMode) -> bool {
        self.supported_modes().contains(&mode)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn output_metric_lookup() {
        let out = WorkloadOutput {
            ops: 1,
            checksum: 2,
            metrics: vec![("lat".into(), 3.5)],
        };
        assert_eq!(out.metric("lat"), Some(3.5));
        assert_eq!(out.metric("nope"), None);
    }

    #[test]
    fn error_display_and_from() {
        let e: WorkloadError = SgxError::NotInEnclave.into();
        assert!(e.to_string().contains("sgx error"));
        assert!(WorkloadError::FileNotFound("x".into())
            .to_string()
            .contains('x'));
        let t: WorkloadError = TransientError::SyscallFailed { at_cycles: 7 }.into();
        assert!(t.to_string().contains("transient"));
        assert!(t.to_string().contains('7'));
    }

    #[test]
    fn error_classification() {
        use ErrorClass::*;
        let cases: Vec<(WorkloadError, ErrorClass)> = vec![
            (SgxError::NotInEnclave.into(), Fatal),
            (WorkloadError::FileNotFound("f".into()), Fatal),
            (WorkloadError::Validation("v".into()), Fatal),
            (WorkloadError::Other("o".into()), Fatal),
            (
                WorkloadError::Timeout {
                    budget_cycles: 10,
                    elapsed_cycles: 12,
                },
                Fatal,
            ),
            (
                WorkloadError::Trace(trace::TraceError::NoOpenPhase { found: "p".into() }),
                Fatal,
            ),
            (
                WorkloadError::QuorumLost {
                    live: 2,
                    threshold: 3,
                },
                Fatal,
            ),
            (
                TransientError::SyscallFailed { at_cycles: 1 }.into(),
                Transient,
            ),
            (
                TransientError::IoCorruption { file: "f".into() }.into(),
                Transient,
            ),
        ];
        for (err, class) in cases {
            assert_eq!(err.class(), class, "{err}");
        }
    }

    #[test]
    fn error_class_display_round_trips() {
        for class in [ErrorClass::Transient, ErrorClass::Fatal] {
            let shown = class.to_string();
            assert_eq!(shown.parse::<ErrorClass>().unwrap(), class);
        }
        assert!("flaky".parse::<ErrorClass>().is_err());
    }
}
