//! Checkpoint/resume for sweep execution.
//!
//! Long sweeps die for boring reasons — a killed CI job, a full disk, a
//! rebooted host — and re-running every completed cell wastes exactly
//! the cycles the harness exists to measure. [`SuiteRunner::run_with_checkpoint`]
//! persists every completed cell to a JSON file (atomically: temp file +
//! rename) and, on resume, re-loads the completed cells and executes
//! only the remainder, producing a [`SweepReport`] whose
//! [`fingerprint`](SweepReport::fingerprint) is identical to an
//! uninterrupted run.
//!
//! The file embeds a *grid fingerprint* — a digest of the workload
//! names, the enumerated grid, the fault plan, the retry budget and the
//! cell budget — so a checkpoint can never be resumed against a sweep
//! it does not describe. The format is a dependency-free JSON dialect
//! (all numbers are unsigned 64-bit decimals; `f64` metrics are stored
//! as their IEEE-754 bit patterns) written and parsed entirely by this
//! module.
//!
//! Since the crash-safe artifact plane landed, every checkpoint write is
//! a *journaled, sealed publish* through [`crate::io`]: the file carries
//! a CRC32 integrity footer, each rewrite records intent → commit in the
//! sibling recovery journal, and resume first runs [`io::recover`] to
//! repair or quarantine state a crash left behind. A checksum mismatch
//! on load is a typed [`ArtifactError::Corrupt`] (the bad file is kept
//! at `<path>.corrupt`); v2 files *without* a footer still load, so
//! pre-integrity checkpoints remain resumable.

use crate::io::{self, ArtifactError, ArtifactIo, Journal, RealFs};
use crate::runner::RunReport;
use crate::sweep::{
    AttemptFailure, CellError, CellErrorKind, CellKey, Fnv, SuiteRunner, SweepCell, SweepError,
    SweepReport,
};
use crate::workload::{Workload, WorkloadOutput};
use mem_sim::Counters;
use sgx_sim::{CounterField, DriverStats, SgxCounters};
use std::collections::BTreeMap;
use std::path::{Path, PathBuf};
use std::sync::Mutex;

/// Bounded retry budget for checkpoint publishes: transient (EIO) and
/// torn write failures are redone this many times before the sweep
/// latches the error.
const PUBLISH_ATTEMPTS: usize = 4;

/// Checkpoint file format version; bumped on incompatible layout change.
///
/// Version 2: cells are keyed by the typed [`CellKey`] display form
/// (`"key":"workload/mode/setting/rep"`) instead of four numeric
/// discriminants, and the counter arrays include `mee_cycles`.
///
/// Version 3: keys may carry the optional co-tenancy dimension
/// (`"workload/mode/setting/rep/tNaM"`). Version-2 files — which by
/// construction describe grids without the dimension — still load; see
/// [`OLDEST_LOADABLE_VERSION`].
///
/// Version 4: keys may additionally carry the optional
/// distributed-protocol dimension (`…/pNqT`, after the tenant field when
/// both are present). Another strict grammar superset, so v2 and v3
/// files load unchanged.
pub const CHECKPOINT_VERSION: u64 = 4;

/// Oldest checkpoint version [`load_checkpoint`] still accepts. The v3
/// and v4 key grammars are strict supersets of v2 (the tenant and party
/// fields are optional in both the type and the display form), so older
/// files parse unchanged.
pub const OLDEST_LOADABLE_VERSION: u64 = 2;

/// Pinned input to [`grid_fingerprint`]. Deliberately *not*
/// [`CHECKPOINT_VERSION`]: the fingerprint guards the sweep's *shape*,
/// not the file layout, and tenant-free grids render identical keys
/// under v2 and v3 — so v2 checkpoints stay resumable across the bump.
/// Bump this only when old fingerprints must be invalidated.
const FINGERPRINT_EPOCH: u64 = 2;

impl SuiteRunner {
    /// Runs the grid like [`SuiteRunner::run`], persisting every
    /// completed cell to `path`. When `resume` is true and `path` holds
    /// a checkpoint of the *same* sweep (grid fingerprint match), its
    /// completed cells are adopted instead of re-run.
    ///
    /// # Errors
    ///
    /// A typed [`SweepError`] when the checkpoint cannot be read,
    /// verified, or written, or when the quarantine tolerance is
    /// exceeded.
    pub fn run_with_checkpoint(
        &self,
        workloads: &[&dyn Workload],
        path: &Path,
        resume: bool,
    ) -> Result<SweepReport, SweepError> {
        self.run_with_checkpoint_io(workloads, path, resume, &RealFs)
    }

    /// [`SuiteRunner::run_with_checkpoint`] through an injectable
    /// [`ArtifactIo`] backend — the entry point the chaos matrix drives
    /// with a fault-injecting filesystem.
    ///
    /// On entry the checkpoint's recovery journal is replayed
    /// ([`io::recover`]): an interrupted publish whose temp sibling
    /// verifies is completed, torn state is quarantined. Resume then
    /// loads the (integrity-checked) file, rejects grid mismatches, and
    /// executes only the remaining cells; every completed cell is
    /// re-published as a sealed, journaled checkpoint.
    ///
    /// # Errors
    ///
    /// A typed [`SweepError`].
    pub fn run_with_checkpoint_io(
        &self,
        workloads: &[&dyn Workload],
        path: &Path,
        resume: bool,
        io: &dyn ArtifactIo,
    ) -> Result<SweepReport, SweepError> {
        io::recover(io, path)?;
        let grid = self.grid(workloads);
        let grid_fp = grid_fingerprint(self, workloads);
        let mut prefilled = Vec::new();
        let mut retained = BTreeMap::new();
        if resume && io.exists(path) {
            let stored = load_checkpoint_io(io, path)?;
            if stored.grid_fp != grid_fp {
                return Err(SweepError::Artifact(ArtifactError::Mismatch {
                    path: path.to_path_buf(),
                    message: format!(
                        "checkpoint describes a different sweep \
                         (grid fingerprint {:#018x}, expected {:#018x})",
                        stored.grid_fp, grid_fp
                    ),
                }));
            }
            for cell in stored.cells {
                let index = cell.index;
                let adopted = adopt_cell(cell, &grid, workloads).map_err(|message| {
                    SweepError::Artifact(ArtifactError::Format {
                        path: path.to_path_buf(),
                        message,
                    })
                })?;
                retained.insert(index, cell_json(index, &adopted));
                prefilled.push((index, adopted));
            }
        }
        let sink = CheckpointSink {
            path: path.to_path_buf(),
            io,
            journal: Journal::for_artifact(path),
            state: Mutex::new(SinkState {
                grid_fp,
                cells: retained,
                error: None,
            }),
        };
        // Write the header (plus any adopted cells) up front so even a
        // sweep killed before its first completed cell leaves a valid,
        // resumable file behind.
        sink.flush()?;
        let report = self.execute_resumable(workloads, self.thread_count(), prefilled, Some(&sink));
        sink.take_error()?;
        // Clean end of run: the journal has no pending intent, retire it
        // so the next startup's recovery scan is a no-op.
        sink.journal.retire(io)?;
        self.enforce_quarantine(&report)?;
        Ok(report)
    }
}

/// Digest of everything that determines the sweep's shape and policy:
/// adopting a cell from a checkpoint is only sound when all of it
/// matches. Public so campaign-level orchestrators can stamp their own
/// per-stage checkpoint files with the same guard.
pub fn grid_fingerprint(suite: &SuiteRunner, workloads: &[&dyn Workload]) -> u64 {
    let mut h = Fnv::new();
    h.u64(FINGERPRINT_EPOCH);
    h.u64(workloads.len() as u64);
    for w in workloads {
        h.str(w.name());
    }
    for c in suite.grid(workloads) {
        h.str(&c.to_string());
    }
    h.u64(
        suite
            .runner()
            .fault_plan()
            .map_or(0, faults::FaultPlan::digest),
    );
    h.u64(suite.retry_budget() as u64);
    h.u64(suite.runner().cell_budget_cycles().unwrap_or(0));
    h.finish()
}

/// Accumulates completed cells and rewrites the checkpoint file after
/// each one — every rewrite a sealed, journaled, retry-bounded publish.
/// Shared across sweep workers behind its internal mutex.
pub(crate) struct CheckpointSink<'a> {
    path: PathBuf,
    io: &'a dyn ArtifactIo,
    journal: Journal,
    state: Mutex<SinkState>,
}

struct SinkState {
    grid_fp: u64,
    /// Grid index → serialized cell JSON, kept sorted for stable files.
    cells: BTreeMap<usize, String>,
    /// First unrecoverable write failure, surfaced when the sweep
    /// finishes (workers cannot propagate it mid-flight).
    error: Option<ArtifactError>,
}

impl CheckpointSink<'_> {
    /// Records a completed cell and rewrites the file. Skipped cells
    /// are never offered here, so a resume re-runs them.
    pub(crate) fn record(&self, index: usize, cell: &SweepCell) {
        let mut state = self.state.lock().expect("sink lock is never poisoned");
        state.cells.insert(index, cell_json(index, cell));
        if let Err(e) = self.publish(&state) {
            state.error.get_or_insert(e);
        }
    }

    /// One sealed, journaled publish with the bounded transient-retry
    /// budget: torn writes and transient EIO are redone, everything
    /// else (ENOSPC, crash, corruption) surfaces immediately.
    fn publish(&self, state: &SinkState) -> Result<(), ArtifactError> {
        io::publish_sealed(
            self.io,
            &self.journal,
            &self.path,
            &render(state),
            PUBLISH_ATTEMPTS,
        )
    }

    fn flush(&self) -> Result<(), ArtifactError> {
        let state = self.state.lock().expect("sink lock is never poisoned");
        self.publish(&state)
    }

    fn take_error(&self) -> Result<(), ArtifactError> {
        match self
            .state
            .lock()
            .expect("sink lock is never poisoned")
            .error
            .take()
        {
            Some(e) => Err(e),
            None => Ok(()),
        }
    }
}

fn render(state: &SinkState) -> String {
    render_document(state.grid_fp, state.cells.values().map(String::as_str))
}

fn render_document<'a>(grid_fp: u64, cells: impl Iterator<Item = &'a str>) -> String {
    let mut out = String::new();
    out.push_str("{\"version\":");
    out.push_str(&CHECKPOINT_VERSION.to_string());
    out.push_str(",\"grid_fp\":");
    out.push_str(&grid_fp.to_string());
    out.push_str(",\"cells\":[");
    for (i, cell) in cells.enumerate() {
        if i > 0 {
            out.push(',');
        }
        out.push_str(cell);
    }
    out.push_str("]}\n");
    out
}

/// Renders a checkpoint document (the unsealed body, v2 format) for an
/// arbitrary set of completed cells — the building block campaign
/// orchestrators use to persist per-stage progress in the exact format
/// [`load_checkpoint_io`] reads back. Cells are sorted by grid index so
/// the rendered file is stable regardless of completion order.
pub fn render_checkpoint(grid_fp: u64, cells: &[(usize, &SweepCell)]) -> String {
    let sorted: BTreeMap<usize, String> = cells
        .iter()
        .map(|&(index, cell)| (index, cell_json(index, cell)))
        .collect();
    render_document(grid_fp, sorted.values().map(String::as_str))
}

/// Turns a parsed [`StoredCell`] back into a live [`SweepCell`],
/// verifying it against the enumerated grid and the live workload set —
/// the public face of the resume path's adoption step, for orchestrators
/// that manage their own checkpoint files.
///
/// # Errors
///
/// A human-readable message when the stored cell does not belong to
/// this grid (index out of range, workload renamed, key mismatch) or
/// cannot be re-hydrated.
pub fn adopt_stored_cell(
    stored: StoredCell,
    grid: &[crate::sweep::CellKey],
    workloads: &[&dyn Workload],
) -> Result<SweepCell, String> {
    adopt_cell(stored, grid, workloads)
}

// ---------------------------------------------------------------------
// Serialization
// ---------------------------------------------------------------------

fn cell_json(index: usize, cell: &SweepCell) -> String {
    let mut out = String::new();
    out.push_str("{\"index\":");
    out.push_str(&index.to_string());
    out.push_str(",\"workload\":");
    json_string(&mut out, cell.workload);
    out.push_str(",\"key\":");
    json_string(&mut out, &cell.cell.to_string());
    for (key, v) in [
        ("attempts", cell.attempts as u64),
        ("backoff", cell.backoff_cycles),
    ] {
        out.push_str(",\"");
        out.push_str(key);
        out.push_str("\":");
        out.push_str(&v.to_string());
    }
    // The attempt trail is optional (emitted only when non-empty), so
    // v2 files written before trails existed parse unchanged.
    if !cell.trail.is_empty() {
        out.push_str(",\"trail\":[");
        for (i, a) in cell.trail.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            out.push_str("{\"attempt\":");
            out.push_str(&a.attempt.to_string());
            out.push_str(",\"kind\":");
            json_string(&mut out, &a.kind.to_string());
            out.push_str(",\"message\":");
            json_string(&mut out, &a.message);
            out.push('}');
        }
        out.push(']');
    }
    match &cell.result {
        Ok(r) => {
            out.push_str(",\"ok\":{\"runtime\":");
            out.push_str(&r.runtime_cycles.to_string());
            out.push_str(",\"clock\":");
            out.push_str(&r.clock_hz.to_string());
            out.push_str(",\"counters\":");
            named_u64s(&mut out, r.counters.fields());
            out.push_str(",\"sgx\":");
            named_u64s(&mut out, r.sgx.fields());
            out.push_str(",\"ops\":");
            out.push_str(&r.output.ops.to_string());
            out.push_str(",\"checksum\":");
            out.push_str(&r.output.checksum.to_string());
            out.push_str(",\"metrics\":[");
            for (i, (name, v)) in r.output.metrics.iter().enumerate() {
                if i > 0 {
                    out.push(',');
                }
                out.push('[');
                json_string(&mut out, name);
                out.push(',');
                out.push_str(&v.to_bits().to_string());
                out.push(']');
            }
            out.push_str("]}");
        }
        Err(e) => {
            out.push_str(",\"err\":{\"kind\":");
            json_string(&mut out, &e.kind.to_string());
            out.push_str(",\"message\":");
            json_string(&mut out, &e.message);
            out.push('}');
        }
    }
    out.push('}');
    out
}

fn named_u64s(out: &mut String, pairs: impl IntoIterator<Item = (&'static str, u64)>) {
    out.push('[');
    for (i, (name, v)) in pairs.into_iter().enumerate() {
        if i > 0 {
            out.push(',');
        }
        out.push('[');
        json_string(out, name);
        out.push(',');
        out.push_str(&v.to_string());
        out.push(']');
    }
    out.push(']');
}

fn json_string(out: &mut String, s: &str) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                out.push_str(&format!("\\u{:04x}", c as u32));
            }
            c => out.push(c),
        }
    }
    out.push('"');
}

// ---------------------------------------------------------------------
// Parsing
// ---------------------------------------------------------------------

/// A parsed checkpoint file.
#[derive(Debug, Clone)]
pub struct Checkpoint {
    /// Format version (within
    /// [`OLDEST_LOADABLE_VERSION`]`..=`[`CHECKPOINT_VERSION`]).
    pub version: u64,
    /// Digest of the sweep the file belongs to.
    pub grid_fp: u64,
    /// Completed cells, in stored (grid-index) order.
    pub cells: Vec<StoredCell>,
}

/// One completed cell as stored on disk.
#[derive(Debug, Clone)]
pub struct StoredCell {
    /// Position in the enumerated grid.
    pub index: usize,
    /// Workload name at store time (verified against the live suite).
    pub workload: String,
    /// The typed grid key, parsed from its stored display form.
    pub key: CellKey,
    /// Attempts the cell took.
    pub attempts: usize,
    /// Accounted retry backoff.
    pub backoff_cycles: u64,
    /// The non-final attempt failures (empty for files that predate
    /// attempt trails).
    pub trail: Vec<AttemptFailure>,
    /// The stored outcome.
    pub result: StoredResult,
}

/// Stored cell outcome.
#[derive(Debug, Clone)]
pub enum StoredResult {
    /// A successful run (the fingerprinted subset of [`RunReport`]).
    Ok {
        /// Measured runtime in cycles.
        runtime_cycles: u64,
        /// Machine clock in Hz.
        clock_hz: u64,
        /// Hardware counter (name, value) pairs.
        counters: Vec<(String, u64)>,
        /// SGX counter (name, value) pairs.
        sgx: Vec<(String, u64)>,
        /// Application-level operations.
        ops: u64,
        /// Validation checksum.
        checksum: u64,
        /// Metrics as (name, IEEE-754 bits).
        metrics: Vec<(String, u64)>,
    },
    /// A failed cell.
    Err {
        /// The structured failure kind, as displayed.
        kind: String,
        /// The failure message.
        message: String,
    },
}

/// Reads, integrity-checks and parses a checkpoint file on the real
/// filesystem. See [`load_checkpoint_io`].
///
/// # Errors
///
/// A typed [`ArtifactError`] describing the I/O, integrity, syntax, or
/// schema problem.
pub fn load_checkpoint(path: &Path) -> Result<Checkpoint, ArtifactError> {
    load_checkpoint_io(&RealFs, path)
}

/// [`load_checkpoint`] through an injectable backend.
///
/// The integrity footer (when present) is verified first: a mismatch is
/// [`ArtifactError::Corrupt`] — *not* a JSON parse error — and the bad
/// file is preserved at `<path>.corrupt` for inspection. Files without
/// a footer (written before the integrity format) still load.
///
/// # Errors
///
/// A typed [`ArtifactError`].
pub fn load_checkpoint_io(io: &dyn ArtifactIo, path: &Path) -> Result<Checkpoint, ArtifactError> {
    let text = io.read(path)?;
    let body = match io::unseal(path, &text) {
        Ok((_crc, body)) => body,
        Err(e @ ArtifactError::Corrupt { .. }) => {
            // Keep the evidence: a checksum mismatch moves the file
            // aside instead of letting a resume half-trust it.
            io.rename(path, &io::corrupt_sibling(path)).ok();
            return Err(e);
        }
        Err(e) => return Err(e),
    };
    parse_checkpoint_body(body).map_err(|message| ArtifactError::Format {
        path: path.to_path_buf(),
        message,
    })
}

fn parse_checkpoint_body(body: &str) -> Result<Checkpoint, String> {
    let root = parse_json(body)?;
    let obj = root.as_obj("checkpoint")?;
    let version = get(obj, "version")?.as_u64("version")?;
    if !(OLDEST_LOADABLE_VERSION..=CHECKPOINT_VERSION).contains(&version) {
        return Err(format!(
            "checkpoint version {version} unsupported \
             (expected {OLDEST_LOADABLE_VERSION}..={CHECKPOINT_VERSION})"
        ));
    }
    let grid_fp = get(obj, "grid_fp")?.as_u64("grid_fp")?;
    let mut cells = Vec::new();
    for v in get(obj, "cells")?.as_arr("cells")? {
        cells.push(parse_cell(v)?);
    }
    Ok(Checkpoint {
        version,
        grid_fp,
        cells,
    })
}

fn parse_cell(v: &Json) -> Result<StoredCell, String> {
    let obj = v.as_obj("cell")?;
    let result = if let Ok(ok) = get(obj, "ok") {
        let ok = ok.as_obj("ok")?;
        StoredResult::Ok {
            runtime_cycles: get(ok, "runtime")?.as_u64("runtime")?,
            clock_hz: get(ok, "clock")?.as_u64("clock")?,
            counters: named_pairs(get(ok, "counters")?, "counters")?,
            sgx: named_pairs(get(ok, "sgx")?, "sgx")?,
            ops: get(ok, "ops")?.as_u64("ops")?,
            checksum: get(ok, "checksum")?.as_u64("checksum")?,
            metrics: named_pairs(get(ok, "metrics")?, "metrics")?,
        }
    } else {
        let err = get(obj, "err")?.as_obj("err")?;
        StoredResult::Err {
            kind: get(err, "kind")?.as_str("kind")?.to_owned(),
            message: get(err, "message")?.as_str("message")?.to_owned(),
        }
    };
    let index = get(obj, "index")?.as_u64("index")? as usize;
    let key = get(obj, "key")?
        .as_str("key")?
        .parse::<CellKey>()
        .map_err(|e| format!("checkpoint cell {index}: {e}"))?;
    let mut trail = Vec::new();
    if let Ok(stored) = get(obj, "trail") {
        for t in stored.as_arr("trail")? {
            let t = t.as_obj("trail")?;
            trail.push(AttemptFailure {
                attempt: get(t, "attempt")?.as_u64("attempt")? as usize,
                kind: get(t, "kind")?
                    .as_str("kind")?
                    .parse()
                    .map_err(|e| format!("checkpoint cell {index} trail: {e}"))?,
                message: get(t, "message")?.as_str("message")?.to_owned(),
            });
        }
    }
    Ok(StoredCell {
        index,
        workload: get(obj, "workload")?.as_str("workload")?.to_owned(),
        key,
        attempts: get(obj, "attempts")?.as_u64("attempts")? as usize,
        backoff_cycles: get(obj, "backoff")?.as_u64("backoff")?,
        trail,
        result,
    })
}

fn named_pairs(v: &Json, what: &str) -> Result<Vec<(String, u64)>, String> {
    let mut out = Vec::new();
    for entry in v.as_arr(what)? {
        let pair = entry.as_arr(what)?;
        if pair.len() != 2 {
            return Err(format!("{what}: expected [name, value] pairs"));
        }
        out.push((pair[0].as_str(what)?.to_owned(), pair[1].as_u64(what)?));
    }
    Ok(out)
}

/// Turns a stored cell back into a live [`SweepCell`], verifying it
/// against the enumerated grid and the live workload set.
fn adopt_cell(
    stored: StoredCell,
    grid: &[crate::sweep::CellKey],
    workloads: &[&dyn Workload],
) -> Result<SweepCell, String> {
    let index = stored.index;
    let grid_cell = *grid
        .get(index)
        .ok_or_else(|| format!("checkpoint cell index {index} outside the grid"))?;
    let w = workloads
        .get(stored.key.workload)
        .ok_or_else(|| format!("checkpoint cell {index}: workload index out of range"))?;
    if w.name() != stored.workload {
        return Err(format!(
            "checkpoint cell {index}: stored workload `{}` is `{}` in this sweep",
            stored.workload,
            w.name()
        ));
    }
    if grid_cell != stored.key {
        return Err(format!(
            "checkpoint cell {index} ({}) does not match the enumerated grid ({grid_cell})",
            stored.key
        ));
    }
    let (mode, setting) = (grid_cell.mode, grid_cell.setting);
    let result = match stored.result {
        StoredResult::Ok {
            runtime_cycles,
            clock_hz,
            counters,
            sgx,
            ops,
            checksum,
            metrics,
        } => {
            let mut c = Counters::new();
            restore_fields(&mut c, Counters::set_field, &counters, index)?;
            let mut s = SgxCounters::default();
            // SGX counters restore through the typed field enum: unknown
            // names fail the parse instead of silently writing nowhere.
            restore_fields(
                &mut s,
                |s, name, v| {
                    CounterField::parse(name).is_some_and(|f| {
                        s.set(f, v);
                        true
                    })
                },
                &sgx,
                index,
            )?;
            Ok(RunReport {
                workload: w.name(),
                mode,
                setting,
                runtime_cycles,
                counters: c,
                sgx: s,
                // None of these enter the fingerprint; a resumed report
                // only guarantees the fingerprinted subset. Traces in
                // particular are never persisted — re-trace to get one.
                driver: DriverStats::new(),
                libos_startup: None,
                timeline: Vec::new(),
                phases: Vec::new(),
                trace: None,
                clock_hz,
                output: WorkloadOutput {
                    ops,
                    checksum,
                    metrics: metrics
                        .into_iter()
                        .map(|(name, bits)| (name, f64::from_bits(bits)))
                        .collect(),
                },
            })
        }
        StoredResult::Err { kind, message } => {
            let kind: CellErrorKind = kind
                .parse()
                .map_err(|e| format!("checkpoint cell {index}: {e}"))?;
            Err(CellError { kind, message })
        }
    };
    Ok(SweepCell {
        cell: grid_cell,
        workload: w.name(),
        result,
        attempts: stored.attempts,
        backoff_cycles: stored.backoff_cycles,
        trail: stored.trail,
    })
}

fn restore_fields<T>(
    target: &mut T,
    set: impl Fn(&mut T, &str, u64) -> bool,
    pairs: &[(String, u64)],
    index: usize,
) -> Result<(), String> {
    for (name, v) in pairs {
        if !set(target, name, *v) {
            return Err(format!(
                "checkpoint cell {index}: unknown counter `{name}` \
                 (file from a different build?)"
            ));
        }
    }
    Ok(())
}

// Minimal JSON value model — exactly what the writer above emits.

#[derive(Debug, Clone)]
enum Json {
    Num(u64),
    Str(String),
    Arr(Vec<Json>),
    Obj(Vec<(String, Json)>),
}

impl Json {
    fn as_u64(&self, what: &str) -> Result<u64, String> {
        match self {
            Json::Num(v) => Ok(*v),
            _ => Err(format!("{what}: expected a number")),
        }
    }

    fn as_str(&self, what: &str) -> Result<&str, String> {
        match self {
            Json::Str(s) => Ok(s),
            _ => Err(format!("{what}: expected a string")),
        }
    }

    fn as_arr(&self, what: &str) -> Result<&[Json], String> {
        match self {
            Json::Arr(v) => Ok(v),
            _ => Err(format!("{what}: expected an array")),
        }
    }

    fn as_obj(&self, what: &str) -> Result<&[(String, Json)], String> {
        match self {
            Json::Obj(v) => Ok(v),
            _ => Err(format!("{what}: expected an object")),
        }
    }
}

fn get<'a>(obj: &'a [(String, Json)], key: &str) -> Result<&'a Json, String> {
    obj.iter()
        .find(|(k, _)| k == key)
        .map(|(_, v)| v)
        .ok_or_else(|| format!("missing key `{key}`"))
}

fn parse_json(text: &str) -> Result<Json, String> {
    let mut p = Parser {
        bytes: text.as_bytes(),
        pos: 0,
    };
    let v = p.value()?;
    p.skip_ws();
    if p.pos != p.bytes.len() {
        return Err(format!("trailing data at byte {}", p.pos));
    }
    Ok(v)
}

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl Parser<'_> {
    fn skip_ws(&mut self) {
        while matches!(self.bytes.get(self.pos), Some(b' ' | b'\t' | b'\n' | b'\r')) {
            self.pos += 1;
        }
    }

    fn peek(&mut self) -> Result<u8, String> {
        self.skip_ws();
        self.bytes
            .get(self.pos)
            .copied()
            .ok_or_else(|| "unexpected end of checkpoint".to_owned())
    }

    fn expect(&mut self, b: u8) -> Result<(), String> {
        if self.peek()? == b {
            self.pos += 1;
            Ok(())
        } else {
            Err(format!("expected `{}` at byte {}", char::from(b), self.pos))
        }
    }

    fn value(&mut self) -> Result<Json, String> {
        match self.peek()? {
            b'{' => self.object(),
            b'[' => self.array(),
            b'"' => Ok(Json::Str(self.string()?)),
            b'0'..=b'9' => self.number(),
            other => Err(format!(
                "unexpected `{}` at byte {}",
                char::from(other),
                self.pos
            )),
        }
    }

    fn object(&mut self) -> Result<Json, String> {
        self.expect(b'{')?;
        let mut out = Vec::new();
        if self.peek()? == b'}' {
            self.pos += 1;
            return Ok(Json::Obj(out));
        }
        loop {
            self.skip_ws();
            let key = self.string()?;
            self.expect(b':')?;
            out.push((key, self.value()?));
            match self.peek()? {
                b',' => self.pos += 1,
                b'}' => {
                    self.pos += 1;
                    return Ok(Json::Obj(out));
                }
                other => {
                    return Err(format!(
                        "expected `,` or `}}`, found `{}` at byte {}",
                        char::from(other),
                        self.pos
                    ))
                }
            }
        }
    }

    fn array(&mut self) -> Result<Json, String> {
        self.expect(b'[')?;
        let mut out = Vec::new();
        if self.peek()? == b']' {
            self.pos += 1;
            return Ok(Json::Arr(out));
        }
        loop {
            out.push(self.value()?);
            match self.peek()? {
                b',' => self.pos += 1,
                b']' => {
                    self.pos += 1;
                    return Ok(Json::Arr(out));
                }
                other => {
                    return Err(format!(
                        "expected `,` or `]`, found `{}` at byte {}",
                        char::from(other),
                        self.pos
                    ))
                }
            }
        }
    }

    fn number(&mut self) -> Result<Json, String> {
        let start = self.pos;
        while matches!(self.bytes.get(self.pos), Some(b'0'..=b'9')) {
            self.pos += 1;
        }
        let text = std::str::from_utf8(&self.bytes[start..self.pos])
            .map_err(|_| "non-UTF8 number".to_owned())?;
        text.parse::<u64>()
            .map(Json::Num)
            .map_err(|e| format!("bad number at byte {start}: {e}"))
    }

    fn string(&mut self) -> Result<String, String> {
        if self.bytes.get(self.pos) != Some(&b'"') {
            return Err(format!("expected a string at byte {}", self.pos));
        }
        self.pos += 1;
        let mut out = String::new();
        loop {
            let rest = &self.bytes[self.pos..];
            let Some(&b) = rest.first() else {
                return Err("unterminated string".to_owned());
            };
            match b {
                b'"' => {
                    self.pos += 1;
                    return Ok(out);
                }
                b'\\' => {
                    let esc = rest.get(1).copied().ok_or("unterminated escape")?;
                    self.pos += 2;
                    match esc {
                        b'"' => out.push('"'),
                        b'\\' => out.push('\\'),
                        b'/' => out.push('/'),
                        b'n' => out.push('\n'),
                        b'r' => out.push('\r'),
                        b't' => out.push('\t'),
                        b'u' => {
                            let hex = self
                                .bytes
                                .get(self.pos..self.pos + 4)
                                .and_then(|h| std::str::from_utf8(h).ok())
                                .ok_or("truncated \\u escape")?;
                            let code = u32::from_str_radix(hex, 16)
                                .map_err(|e| format!("bad \\u escape: {e}"))?;
                            self.pos += 4;
                            out.push(
                                char::from_u32(code)
                                    .ok_or_else(|| format!("invalid code point {code:#x}"))?,
                            );
                        }
                        other => return Err(format!("unknown escape `\\{}`", char::from(other))),
                    }
                }
                _ => {
                    // Consume one UTF-8 scalar (multi-byte safe).
                    let s = std::str::from_utf8(rest).map_err(|_| "non-UTF8 string".to_owned())?;
                    let c = s.chars().next().ok_or("unterminated string")?;
                    out.push(c);
                    self.pos += c.len_utf8();
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::env::Env;
    use crate::modes::{ExecMode, InputSetting};
    use crate::runner::RunnerConfig;
    use crate::workload::{WorkloadError, WorkloadSpec};

    struct Tick;

    impl Workload for Tick {
        fn name(&self) -> &'static str {
            "Tick"
        }

        fn property(&self) -> &'static str {
            "test"
        }

        fn supported_modes(&self) -> &'static [ExecMode] {
            &[ExecMode::Vanilla, ExecMode::Native]
        }

        fn spec(&self, _setting: InputSetting) -> WorkloadSpec {
            WorkloadSpec::new(1 << 16, "tick")
        }

        fn setup(&self, _env: &mut Env, _setting: InputSetting) -> Result<(), WorkloadError> {
            Ok(())
        }

        fn execute(
            &self,
            env: &mut Env,
            setting: InputSetting,
        ) -> Result<WorkloadOutput, WorkloadError> {
            env.compute(match setting {
                InputSetting::Low => 1_000,
                InputSetting::Medium => 2_000,
                InputSetting::High => 3_000,
            });
            Ok(WorkloadOutput {
                ops: 3,
                checksum: 11,
                metrics: vec![("phase".into(), 0.25)],
            })
        }
    }

    fn scratch(name: &str) -> PathBuf {
        let mut p = std::env::temp_dir();
        p.push(format!("sgxgauge-ckpt-{}-{name}.json", std::process::id()));
        p
    }

    fn suite() -> SuiteRunner {
        SuiteRunner::new(RunnerConfig::quick_test())
            .settings(&[InputSetting::Low, InputSetting::Medium])
            .threads(2)
    }

    #[test]
    fn checkpointed_sweep_matches_plain_run() {
        let path = scratch("plain");
        let plain = suite().run(&[&Tick]);
        let ck = suite()
            .run_with_checkpoint(&[&Tick], &path, false)
            .expect("checkpointed run succeeds");
        assert_eq!(plain.fingerprint(), ck.fingerprint());
        let _ = std::fs::remove_file(&path);
    }

    #[test]
    fn stored_cells_round_trip_through_the_parser() {
        let path = scratch("roundtrip");
        let report = suite()
            .run_with_checkpoint(&[&Tick], &path, false)
            .expect("run succeeds");
        let stored = load_checkpoint(&path).expect("parses");
        assert_eq!(stored.version, CHECKPOINT_VERSION);
        assert_eq!(stored.cells.len(), report.cells.len());
        // Adopt everything back and compare fingerprints.
        let resumed = suite()
            .run_with_checkpoint(&[&Tick], &path, true)
            .expect("resume succeeds");
        assert_eq!(report.fingerprint(), resumed.fingerprint());
        let _ = std::fs::remove_file(&path);
    }

    #[test]
    fn truncated_checkpoint_resumes_to_identical_report() {
        let path = scratch("truncated");
        let full = suite()
            .run_with_checkpoint(&[&Tick], &path, false)
            .expect("run succeeds");
        // Simulate a sweep killed halfway: keep only the first cell.
        let stored = load_checkpoint(&path).expect("parses");
        let mut partial = format!(
            "{{\"version\":{},\"grid_fp\":{},\"cells\":[",
            stored.version, stored.grid_fp
        );
        let text = std::fs::read_to_string(&path).expect("readable");
        // Cheap re-serialization: slice the first cell out of the file.
        let start = text.find("[{").expect("has cells") + 1;
        let end = text[start..]
            .find("},{")
            .map_or(text.rfind("}]").expect("has end"), |e| start + e + 1);
        partial.push_str(&text[start..end]);
        partial.push_str("]}\n");
        std::fs::write(&path, partial).expect("writable");
        let resumed = suite()
            .run_with_checkpoint(&[&Tick], &path, true)
            .expect("resume succeeds");
        assert_eq!(full.fingerprint(), resumed.fingerprint());
        let _ = std::fs::remove_file(&path);
    }

    #[test]
    fn grid_mismatch_is_rejected() {
        let path = scratch("mismatch");
        suite()
            .run_with_checkpoint(&[&Tick], &path, false)
            .expect("run succeeds");
        // Same file, different sweep shape: one fewer setting.
        let other = SuiteRunner::new(RunnerConfig::quick_test())
            .settings(&[InputSetting::Low])
            .threads(2);
        let err = other
            .run_with_checkpoint(&[&Tick], &path, true)
            .expect_err("must refuse to resume");
        assert!(err.to_string().contains("different sweep"), "{err}");
        let _ = std::fs::remove_file(&path);
    }

    /// A v2 checkpoint — written before the co-tenancy key dimension
    /// existed — still loads and resumes to the identical report: the
    /// version gate accepts 2, the 4-field keys parse (`tenant: None`),
    /// and the grid fingerprint is unchanged by the format bump.
    #[test]
    fn v2_checkpoint_without_tenant_dimension_still_resumes() {
        let path = scratch("v2-compat");
        let full = suite()
            .run_with_checkpoint(&[&Tick], &path, false)
            .expect("run succeeds");
        // Rewrite the sealed file as an unsealed v2 document with the
        // same cells: exactly what a pre-bump build left on disk (v2
        // predates the integrity footer, so no seal).
        let stored = load_checkpoint(&path).expect("parses");
        let text = std::fs::read_to_string(&path).expect("readable");
        let body = text
            .replace(
                &format!("\"version\":{CHECKPOINT_VERSION}"),
                "\"version\":2",
            )
            .lines()
            .next()
            .expect("has body")
            .to_owned();
        assert!(
            !body.contains("/t"),
            "a tenant-free grid must render v2-identical keys"
        );
        std::fs::write(&path, format!("{body}\n")).expect("writable");
        let reloaded = load_checkpoint(&path).expect("v2 file loads");
        assert_eq!(reloaded.version, 2);
        assert_eq!(reloaded.cells.len(), stored.cells.len());
        assert!(reloaded.cells.iter().all(|c| c.key.tenant.is_none()));
        let resumed = suite()
            .run_with_checkpoint(&[&Tick], &path, true)
            .expect("v2 resume succeeds");
        assert_eq!(full.fingerprint(), resumed.fingerprint());
        let _ = std::fs::remove_file(&path);
    }

    /// Versions outside the loadable window are rejected with a
    /// descriptive message, not mis-parsed.
    #[test]
    fn out_of_window_versions_are_rejected() {
        let path = scratch("v1-reject");
        for bad in [1, CHECKPOINT_VERSION + 1] {
            std::fs::write(
                &path,
                format!("{{\"version\":{bad},\"grid_fp\":0,\"cells\":[]}}\n"),
            )
            .expect("writable");
            let err = load_checkpoint(&path).expect_err("must reject");
            assert!(err.to_string().contains("unsupported"), "{err}");
        }
        let _ = std::fs::remove_file(&path);
    }

    #[test]
    fn malformed_files_are_reported_not_panicked() {
        let path = scratch("malformed");
        std::fs::write(&path, "{\"version\":1,").expect("writable");
        let err = suite()
            .run_with_checkpoint(&[&Tick], &path, true)
            .expect_err("must reject");
        assert!(!err.to_string().is_empty());
        let _ = std::fs::remove_file(&path);
    }
}
