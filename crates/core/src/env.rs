//! The workload execution environment.
//!
//! [`Env`] is what every SGXGauge workload programs against. It owns the
//! simulated platform and routes each primitive through the right
//! substrate for the configured [`ExecMode`]:
//!
//! | primitive            | Vanilla        | Native                    | LibOS                        |
//! |-----------------------|----------------|---------------------------|------------------------------|
//! | `alloc(Protected)`    | plain memory   | enclave heap              | enclave heap                 |
//! | memory access         | plain          | EPC + MEE + EPCM          | EPC + MEE + EPCM             |
//! | `secure_call`         | function call  | ECALL round trip          | plain (already inside)       |
//! | `host_syscall`        | syscall        | OCALL                     | shim dispatch + OCALL        |
//! | file I/O              | syscall + copy | OCALL per batch + copy    | shim batches (+ PF crypto)   |
//! | `spawn_app_thread`    | thread         | thread (enters per call)  | thread + persistent ECALL    |
//!
//! Regions hold *real bytes*: reads and writes move data and
//! simultaneously drive the TLB/cache/EPC models, so the performance
//! counters come from the workload's organic access pattern.

use crate::modes::ExecMode;
use crate::workload::{TransientError, WorkloadError};
use faults::{FaultHook, InjectedFault};
use libos_sim::{LibosProcess, Manifest};
use mem_sim::{AccessKind, ThreadId, PAGE_SIZE};
use sgx_sim::{EnclaveId, SgxConfig, SgxMachine};
use std::collections::HashMap;

/// Where a region lives.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Placement {
    /// Inside the enclave (EPC-backed) in Native/LibOS modes; ordinary
    /// memory in Vanilla mode.
    Protected,
    /// Always ordinary, untrusted memory.
    Untrusted,
}

/// Handle to an allocated memory region.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Region(usize);

/// Handle to a simulated logical thread.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct SimThread {
    pub(crate) id: ThreadId,
    idx: usize,
}

#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum ThreadKind {
    /// Application thread: lives inside the enclave in LibOS mode.
    App,
    /// Driver thread (load generator): always untrusted.
    Driver,
}

#[derive(Debug)]
struct ThreadMeta {
    id: ThreadId,
    kind: ThreadKind,
}

#[derive(Debug)]
struct RegionData {
    base: u64,
    data: Vec<u8>,
    protected: bool,
}

#[derive(Debug, Clone)]
struct FileEntry {
    data: Vec<u8>,
    /// True when the bytes are PF-sealed blocks rather than plaintext.
    sealed: bool,
}

/// Configuration of an [`Env`].
#[derive(Debug, Clone)]
pub struct EnvConfig {
    /// Execution mode.
    pub mode: ExecMode,
    /// Platform model parameters.
    pub sgx: SgxConfig,
    /// Estimated protected bytes (sizes Native enclaves; checked against
    /// the LibOS enclave size).
    pub protected_hint: u64,
    /// Bytes of measured binary content for Native enclaves.
    pub native_content: u64,
    /// LibOS manifest; `None` uses the Table 3 defaults with the binary
    /// named "workload".
    pub manifest: Option<Manifest>,
    /// Protected-files mode for LibOS file I/O (Appendix E).
    pub protected_files: bool,
    /// Cycles of a host syscall outside any enclave.
    pub syscall_cycles: u64,
    /// Copy throughput for I/O staging, cycles per KiB.
    pub copy_cycles_per_kib: u64,
    /// I/O batch size (bytes per OCALL in Native mode).
    pub io_batch: u64,
}

impl EnvConfig {
    /// Paper-faithful configuration for `mode` (92 MB EPC, 4 GB LibOS
    /// enclaves).
    pub fn paper(mode: ExecMode, protected_hint: u64) -> Self {
        EnvConfig {
            mode,
            sgx: SgxConfig::default(),
            protected_hint,
            native_content: 4 << 20,
            manifest: None,
            protected_files: false,
            syscall_cycles: sgx_sim::costs::HOST_SYSCALL_CYCLES,
            copy_cycles_per_kib: 70,
            io_batch: 64 << 10,
        }
    }

    /// A configuration for fast unit tests: small EPC (1024 pages) and a
    /// small LibOS enclave, so launches take microseconds.
    pub fn quick_test(mode: ExecMode) -> Self {
        let mut cfg = EnvConfig::paper(mode, 1 << 20);
        cfg.sgx = SgxConfig::with_tiny_epc(1024, 16);
        cfg.manifest = Some(
            Manifest::builder("workload")
                .enclave_size(128 << 20)
                .internal_memory(8 << 20)
                .build(),
        );
        cfg
    }

    /// Enables switchless OCALLs with `workers` proxy threads (§5.6).
    pub fn with_switchless(mut self, workers: usize) -> Self {
        self.sgx.switchless_workers = workers;
        self
    }

    /// Enables LibOS protected-files mode (Appendix E).
    pub fn with_protected_files(mut self) -> Self {
        self.protected_files = true;
        self
    }
}

/// Watchdog panic payload: thrown via `std::panic::panic_any` when the
/// current thread's clock passes the armed cycle budget
/// ([`Env::arm_cycle_budget`]). The runner catches the unwind and turns
/// it into [`WorkloadError::Timeout`]; any other panic keeps propagating.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct CycleBudgetExceeded {
    /// The configured budget.
    pub budget_cycles: u64,
    /// The thread clock when the watchdog fired.
    pub elapsed_cycles: u64,
}

/// Installs (once per process) a panic hook that stays silent for the
/// watchdog's [`CycleBudgetExceeded`] unwind — it is control flow, not a
/// failure, and is always caught by the runner — while delegating every
/// other panic to the previous hook unchanged.
fn silence_watchdog_unwinds() {
    static HOOK: std::sync::Once = std::sync::Once::new();
    HOOK.call_once(|| {
        let prev = std::panic::take_hook();
        std::panic::set_hook(Box::new(move |info| {
            if info
                .payload()
                .downcast_ref::<CycleBudgetExceeded>()
                .is_none()
            {
                prev(info);
            }
        }));
    });
}

/// The execution environment. See the module docs for the mode table and
/// the crate docs for an example.
#[derive(Debug)]
pub struct Env {
    mode: ExecMode,
    machine: SgxMachine,
    regions: Vec<RegionData>,
    files: HashMap<String, FileEntry>,
    native_enclave: Option<EnclaveId>,
    libos: Option<LibosProcess>,
    threads: Vec<ThreadMeta>,
    cur: usize,
    syscall_cycles: u64,
    copy_cycles_per_kib: u64,
    io_batch: u64,
    app_started: bool,
    /// Compiled fault-injection hook for this run, polled from the
    /// charging paths against the simulated thread clock.
    faults: Option<FaultHook>,
    /// Armed cycle budget; `None` disarms the watchdog.
    budget: Option<u64>,
}

impl Env {
    /// Builds the platform for `cfg`: creates the machine and main
    /// thread, and — depending on the mode — the Native enclave or the
    /// LibOS process (whose expensive launch happens here, so it can be
    /// excluded from measurement with [`Env::reset_measurement`]).
    ///
    /// # Errors
    ///
    /// Propagates enclave-creation failures.
    pub fn new(cfg: EnvConfig) -> Result<Env, WorkloadError> {
        // Resolve the LibOS manifest first: its thread count sets the
        // enclave's TCS budget (main thread + app threads + slack for
        // the runtime's own helpers).
        let manifest = match cfg.mode {
            ExecMode::LibOs => {
                let m = cfg.manifest.clone().unwrap_or_else(|| {
                    Manifest::builder("workload")
                        .protected_files(cfg.protected_files)
                        .build()
                });
                let m = if cfg.protected_files && !m.protected_files() {
                    Manifest::builder(m.binary())
                        .enclave_size(m.enclave_size())
                        .threads(m.threads())
                        .internal_memory(m.internal_memory())
                        .protected_files(true)
                        .build()
                } else {
                    m
                };
                Some(m)
            }
            _ => None,
        };
        let mut sgx = cfg.sgx.clone();
        if let Some(m) = &manifest {
            sgx.tcs_per_enclave = m.threads() + 2;
        }
        // Single-enclave envs are the degenerate co-tenant host: build
        // through the same `HostBuilder` front door (see CHANGELOG.md on
        // the positional `SgxMachine::new` deprecation).
        let mut machine = sgx_sim::Host::builder().sgx(sgx).build_machine();
        let main = machine.add_thread();
        let mut native_enclave = None;
        let mut libos = None;
        match cfg.mode {
            ExecMode::Vanilla => {}
            ExecMode::Native => {
                // Size the enclave to the workload: content + heap with
                // slack, as a porting developer would.
                let size =
                    cfg.native_content + cfg.protected_hint + cfg.protected_hint / 2 + (16 << 20);
                native_enclave = Some(machine.create_enclave(size, cfg.native_content)?);
            }
            ExecMode::LibOs => {
                let m = manifest.as_ref().expect("manifest resolved above");
                libos = Some(LibosProcess::launch(&mut machine, main, m)?);
            }
        }
        Ok(Env {
            mode: cfg.mode,
            machine,
            regions: Vec::new(),
            files: HashMap::new(),
            native_enclave,
            libos,
            threads: vec![ThreadMeta {
                id: main,
                kind: ThreadKind::App,
            }],
            cur: 0,
            syscall_cycles: cfg.syscall_cycles,
            copy_cycles_per_kib: cfg.copy_cycles_per_kib,
            io_batch: cfg.io_batch,
            app_started: false,
            faults: None,
            budget: None,
        })
    }

    /// The configured mode.
    pub fn mode(&self) -> ExecMode {
        self.mode
    }

    /// The underlying SGX machine (counters, driver stats, EPC).
    pub fn machine(&self) -> &SgxMachine {
        &self.machine
    }

    /// Mutable machine access, for harness-level plumbing.
    pub fn machine_mut(&mut self) -> &mut SgxMachine {
        &mut self.machine
    }

    /// LibOS start-up statistics, when running in LibOS mode.
    pub fn libos_startup(&self) -> Option<libos_sim::StartupStats> {
        self.libos.as_ref().map(|p| p.startup())
    }

    // ----- lifecycle -------------------------------------------------

    /// Marks the beginning of application execution: in LibOS mode the
    /// main thread enters the enclave and stays there. Call after
    /// [`Workload::setup`](crate::Workload::setup), before measurement.
    ///
    /// # Errors
    ///
    /// Propagates SGX transition failures.
    pub fn start_app(&mut self) -> Result<(), WorkloadError> {
        if self.app_started {
            return Ok(());
        }
        self.app_started = true;
        if let Some(p) = &self.libos {
            p.enter(&mut self.machine, self.threads[0].id)?;
        }
        Ok(())
    }

    /// Resets all measurement state (counters, clocks, driver samples)
    /// while keeping caches, TLBs, EPC residency and page tables warm.
    pub fn reset_measurement(&mut self) {
        self.machine.reset_measurement();
    }

    // ----- fault plane and watchdog ----------------------------------

    /// Installs the compiled fault hook for this run. The environment
    /// polls it from every charging path against the simulated thread
    /// clock, so the injected event stream is a pure function of the
    /// plan, the salt, and the workload's own access pattern.
    pub fn set_fault_hook(&mut self, hook: FaultHook) {
        self.faults = Some(hook);
    }

    /// Arms the cycle-budget watchdog: once the current thread's clock
    /// passes `budget_cycles`, the next charging operation panics with a
    /// [`CycleBudgetExceeded`] payload, which the runner converts to
    /// [`WorkloadError::Timeout`]. Cancels any previously armed budget.
    pub fn arm_cycle_budget(&mut self, budget_cycles: u64) {
        silence_watchdog_unwinds();
        self.budget = Some(budget_cycles);
    }

    #[inline]
    fn check_budget(&mut self) {
        if let Some(budget) = self.budget {
            let elapsed = self.machine.mem().cycles_of(self.threads[self.cur].id);
            if elapsed > budget {
                // Disarm first so drop glue running during the unwind
                // cannot trip the watchdog again.
                self.budget = None;
                std::panic::panic_any(CycleBudgetExceeded {
                    budget_cycles: budget,
                    elapsed_cycles: elapsed,
                });
            }
        }
    }

    /// Advances the fault plane: checks the watchdog, then applies every
    /// injected event that has come due on the current thread's clock.
    /// Called from each charging path; the common case (nothing armed or
    /// nothing due) is a couple of integer compares.
    #[inline]
    fn fault_tick(&mut self) {
        self.check_budget();
        if self.faults.is_none() {
            return;
        }
        let tid = self.threads[self.cur].id;
        // Poll against the clock captured at tick entry: injections below
        // advance the clock, and letting them re-trigger the schedule
        // within the same tick would never drain when an injected burst
        // costs more than its period.
        let now = self.machine.mem().cycles_of(tid);
        loop {
            let ev = match self.faults.as_mut() {
                Some(h) => h.poll(now),
                None => None,
            };
            let Some(ev) = ev else { break };
            // Every applied injection lands in the trace stream so a
            // timeline shows *when* the fault plane perturbed the run.
            self.machine.mem_mut().trace_emit(tid, ev.trace_event());
            match ev {
                // The burst is consumed even outside an enclave (keeping
                // the event stream deterministic); injection itself is a
                // no-op there, as real AEX only interrupts enclave code.
                InjectedFault::Aex { exits } => {
                    for _ in 0..exits {
                        self.machine.inject_aex(tid);
                    }
                }
                InjectedFault::EpcSpike { frames } => {
                    self.machine.set_epc_pressure(tid, frames);
                }
                InjectedFault::EpcRelease => {
                    self.machine.release_epc_pressure();
                }
            }
        }
    }

    /// Elapsed cycles: the maximum clock over all logical threads.
    pub fn elapsed_cycles(&self) -> u64 {
        self.machine.mem().elapsed_cycles()
    }

    // ----- trace phases ----------------------------------------------

    /// Opens a named workload phase span in the trace stream (e.g.
    /// `"build"`, `"query"`). Spans nest; close them innermost-first
    /// with [`Env::phase_end`]. A no-op when no trace sink is installed,
    /// so instrumented workloads cost nothing in untraced runs.
    pub fn phase(&mut self, name: &str) {
        let tid = self.threads[self.cur].id;
        self.machine.trace_phase_begin(tid, name);
    }

    /// Closes the innermost open phase span, which must be `name`.
    ///
    /// # Errors
    ///
    /// [`WorkloadError::Trace`] when `name` is not the innermost open
    /// span (misnested or never opened). Always `Ok` when tracing is
    /// disabled.
    pub fn phase_end(&mut self, name: &str) -> Result<(), WorkloadError> {
        let tid = self.threads[self.cur].id;
        self.machine.trace_phase_end(tid, name)?;
        Ok(())
    }

    /// Runs `f` inside a phase span, closing it on success or failure.
    ///
    /// # Errors
    ///
    /// Propagates `f`'s error; otherwise any span-closing error.
    pub fn with_phase<T>(
        &mut self,
        name: &str,
        f: impl FnOnce(&mut Env) -> Result<T, WorkloadError>,
    ) -> Result<T, WorkloadError> {
        self.phase(name);
        let out = f(self);
        let closed = self.phase_end(name);
        let out = out?;
        closed?;
        Ok(out)
    }

    // ----- threads ---------------------------------------------------

    /// The main thread.
    pub fn main_thread(&self) -> SimThread {
        SimThread {
            id: self.threads[0].id,
            idx: 0,
        }
    }

    /// The thread operations currently charge to.
    pub fn current_thread(&self) -> SimThread {
        SimThread {
            id: self.threads[self.cur].id,
            idx: self.cur,
        }
    }

    /// Spawns an application thread. In LibOS mode the thread enters the
    /// enclave immediately and stays inside (Graphene assigns it a TCS).
    ///
    /// # Errors
    ///
    /// Propagates TCS exhaustion in LibOS mode.
    pub fn spawn_app_thread(&mut self) -> Result<SimThread, WorkloadError> {
        let id = self.machine.add_thread();
        if let Some(p) = &self.libos {
            p.enter(&mut self.machine, id)?;
        }
        self.threads.push(ThreadMeta {
            id,
            kind: ThreadKind::App,
        });
        Ok(SimThread {
            id,
            idx: self.threads.len() - 1,
        })
    }

    /// Spawns a driver (load-generator) thread: always untrusted, never
    /// inside an enclave, in any mode.
    pub fn spawn_driver_thread(&mut self) -> SimThread {
        let id = self.machine.add_thread();
        self.threads.push(ThreadMeta {
            id,
            kind: ThreadKind::Driver,
        });
        SimThread {
            id,
            idx: self.threads.len() - 1,
        }
    }

    /// Runs `f` with operations charged to `th`, then restores the
    /// previous thread.
    pub fn with_thread<T>(&mut self, th: SimThread, f: impl FnOnce(&mut Env) -> T) -> T {
        let prev = self.cur;
        self.cur = th.idx;
        let out = f(self);
        self.cur = prev;
        out
    }

    /// Clock of `th` in cycles.
    pub fn now_of(&self, th: SimThread) -> u64 {
        self.machine.mem().cycles_of(th.id)
    }

    /// Clock of the current thread.
    pub fn now(&self) -> u64 {
        self.machine.mem().cycles_of(self.threads[self.cur].id)
    }

    /// Advances `th`'s clock to at least `cycles` (synchronization).
    pub fn sync_to(&mut self, th: SimThread, cycles: u64) {
        self.machine.mem_mut().sync_to(th.id, cycles);
    }

    /// Fork/join: runs `f(env, i)` once per thread in `workers`, each
    /// starting no earlier than the current thread's clock; afterwards
    /// the current thread joins (advances to) the slowest worker.
    pub fn parallel(&mut self, workers: &[SimThread], mut f: impl FnMut(&mut Env, usize)) {
        let fork = self.now();
        for (i, &w) in workers.iter().enumerate() {
            self.sync_to(w, fork);
            self.with_thread(w, |env| f(env, i));
        }
        let join = workers
            .iter()
            .map(|&w| self.now_of(w))
            .max()
            .unwrap_or(fork);
        let cur = self.current_thread();
        self.sync_to(cur, join);
    }

    // ----- memory ----------------------------------------------------

    /// Allocates a region of `bytes`.
    ///
    /// # Errors
    ///
    /// Fails when a protected allocation exhausts the enclave.
    pub fn alloc(&mut self, bytes: u64, placement: Placement) -> Result<Region, WorkloadError> {
        let protected = placement == Placement::Protected && self.mode != ExecMode::Vanilla;
        let base = match (protected, self.mode) {
            (true, ExecMode::Native) => {
                let e = self.native_enclave.expect("native mode has an enclave");
                self.machine.alloc_enclave_heap(e, bytes)?
            }
            (true, ExecMode::LibOs) => {
                let p = self.libos.as_ref().expect("libos mode has a process");
                p.alloc(&mut self.machine, bytes)?
            }
            _ => self.machine.alloc_untrusted(bytes),
        };
        self.regions.push(RegionData {
            base,
            data: vec![0u8; bytes as usize],
            protected,
        });
        Ok(Region(self.regions.len() - 1))
    }

    /// Size of `region` in bytes.
    pub fn region_len(&self, region: Region) -> u64 {
        self.regions[region.0].data.len() as u64
    }

    /// Whether `region` is EPC-backed in this mode.
    pub fn region_protected(&self, region: Region) -> bool {
        self.regions[region.0].protected
    }

    #[inline]
    fn charge_access(&mut self, region: Region, off: u64, len: u64, kind: AccessKind) {
        let r = &self.regions[region.0];
        debug_assert!(
            off + len <= r.data.len() as u64,
            "region access out of bounds"
        );
        let addr = r.base + off;
        let tid = self.threads[self.cur].id;
        self.machine.access(tid, addr, len, kind);
        self.fault_tick();
    }

    /// Reads a `u64` at byte offset `off`.
    ///
    /// # Panics
    ///
    /// Panics when the access is out of bounds.
    #[inline]
    pub fn read_u64(&mut self, region: Region, off: u64) -> u64 {
        self.charge_access(region, off, 8, AccessKind::Read);
        let d = &self.regions[region.0].data;
        u64::from_le_bytes(
            d[off as usize..off as usize + 8]
                .try_into()
                .expect("8 bytes"),
        )
    }

    /// Writes a `u64` at byte offset `off`.
    ///
    /// # Panics
    ///
    /// Panics when the access is out of bounds.
    #[inline]
    pub fn write_u64(&mut self, region: Region, off: u64, v: u64) {
        self.charge_access(region, off, 8, AccessKind::Write);
        let d = &mut self.regions[region.0].data;
        d[off as usize..off as usize + 8].copy_from_slice(&v.to_le_bytes());
    }

    /// Reads a `u32` at byte offset `off`.
    ///
    /// # Panics
    ///
    /// Panics when the access is out of bounds.
    #[inline]
    pub fn read_u32(&mut self, region: Region, off: u64) -> u32 {
        self.charge_access(region, off, 4, AccessKind::Read);
        let d = &self.regions[region.0].data;
        u32::from_le_bytes(
            d[off as usize..off as usize + 4]
                .try_into()
                .expect("4 bytes"),
        )
    }

    /// Writes a `u32` at byte offset `off`.
    ///
    /// # Panics
    ///
    /// Panics when the access is out of bounds.
    #[inline]
    pub fn write_u32(&mut self, region: Region, off: u64, v: u32) {
        self.charge_access(region, off, 4, AccessKind::Write);
        let d = &mut self.regions[region.0].data;
        d[off as usize..off as usize + 4].copy_from_slice(&v.to_le_bytes());
    }

    /// Reads an `f64` at byte offset `off`.
    ///
    /// # Panics
    ///
    /// Panics when the access is out of bounds.
    #[inline]
    pub fn read_f64(&mut self, region: Region, off: u64) -> f64 {
        f64::from_bits(self.read_u64(region, off))
    }

    /// Writes an `f64` at byte offset `off`.
    ///
    /// # Panics
    ///
    /// Panics when the access is out of bounds.
    #[inline]
    pub fn write_f64(&mut self, region: Region, off: u64, v: f64) {
        self.write_u64(region, off, v.to_bits());
    }

    /// Copies `buf.len()` bytes out of the region.
    ///
    /// # Panics
    ///
    /// Panics when the access is out of bounds.
    pub fn read_bytes(&mut self, region: Region, off: u64, buf: &mut [u8]) {
        self.charge_access(region, off, buf.len() as u64, AccessKind::Read);
        let d = &self.regions[region.0].data;
        buf.copy_from_slice(&d[off as usize..off as usize + buf.len()]);
    }

    /// Copies `buf` into the region.
    ///
    /// # Panics
    ///
    /// Panics when the access is out of bounds.
    pub fn write_bytes(&mut self, region: Region, off: u64, buf: &[u8]) {
        self.charge_access(region, off, buf.len() as u64, AccessKind::Write);
        let d = &mut self.regions[region.0].data;
        d[off as usize..off as usize + buf.len()].copy_from_slice(buf);
    }

    /// Accounting-only touch of `[off, off+len)` — drives the TLB, cache
    /// and EPC models without moving bytes. For streaming passes whose
    /// byte values are irrelevant.
    ///
    /// # Panics
    ///
    /// Panics when the range is out of bounds.
    pub fn touch(&mut self, region: Region, off: u64, len: u64, write: bool) {
        let kind = if write {
            AccessKind::Write
        } else {
            AccessKind::Read
        };
        self.charge_access(region, off, len, kind);
    }

    /// Charges `cycles` of pure computation to the current thread.
    pub fn compute(&mut self, cycles: u64) {
        let tid = self.threads[self.cur].id;
        self.machine.compute(tid, cycles);
        self.fault_tick();
    }

    // ----- secure calls and syscalls ----------------------------------

    /// Executes `f` in the secure world: an ECALL round trip in Native
    /// mode, a plain call otherwise (Vanilla has no enclave; LibOS is
    /// already inside).
    ///
    /// # Errors
    ///
    /// Propagates transition failures (e.g. TCS exhaustion).
    pub fn secure_call<T>(&mut self, f: impl FnOnce(&mut Env) -> T) -> Result<T, WorkloadError> {
        let tid = self.threads[self.cur].id;
        match self.mode {
            ExecMode::Native => {
                let e = self.native_enclave.expect("native mode has an enclave");
                if self.machine.current_enclave(tid).is_some() {
                    return Ok(f(self)); // nested secure section
                }
                self.machine.ecall_enter(tid, e)?;
                let out = f(self);
                self.machine.ecall_exit(tid, e)?;
                Ok(out)
            }
            _ => Ok(f(self)),
        }
    }

    /// One host syscall with no payload (e.g. `accept`, `futex`).
    ///
    /// # Errors
    ///
    /// Propagates transition failures. Under an active fault plan the
    /// syscall may fail transiently
    /// ([`WorkloadError::Transient`]) — the cycles are still charged, as
    /// a failing syscall costs its round trip before reporting `EINTR`.
    pub fn host_syscall(&mut self) -> Result<(), WorkloadError> {
        let tid = self.threads[self.cur].id;
        let kind = self.threads[self.cur].kind;
        match self.mode {
            ExecMode::Vanilla => {
                self.machine.compute(tid, self.syscall_cycles);
            }
            ExecMode::Native => {
                if self.machine.current_enclave(tid).is_some() {
                    self.machine.ocall(tid, self.syscall_cycles)?;
                } else {
                    self.machine.compute(tid, self.syscall_cycles);
                }
            }
            ExecMode::LibOs => {
                if kind == ThreadKind::App {
                    let p = self.libos.as_mut().expect("libos process");
                    p.shim_mut().syscall_host(&mut self.machine, tid)?;
                } else {
                    self.machine.compute(tid, self.syscall_cycles);
                }
            }
        }
        self.fault_tick();
        if self.faults.as_mut().is_some_and(|h| h.syscall_fails()) {
            let at_cycles = self.machine.mem().cycles_of(tid);
            return Err(TransientError::SyscallFailed { at_cycles }.into());
        }
        Ok(())
    }

    /// Transfers `bytes` across the trust boundary (socket send/recv,
    /// pipe): syscalls + staging copies, batched per mode.
    ///
    /// # Errors
    ///
    /// Propagates transition failures.
    pub fn io_transfer(&mut self, bytes: u64, _write: bool) -> Result<(), WorkloadError> {
        let tid = self.threads[self.cur].id;
        let kind = self.threads[self.cur].kind;
        let copy = bytes.div_ceil(1024) * self.copy_cycles_per_kib;
        match self.mode {
            ExecMode::Vanilla => {
                self.machine.compute(tid, self.syscall_cycles + copy);
            }
            ExecMode::Native => {
                if self.machine.current_enclave(tid).is_some() {
                    let chunks = bytes.div_ceil(self.io_batch).max(1);
                    for _ in 0..chunks {
                        self.machine
                            .ocall(tid, self.syscall_cycles + copy / chunks)?;
                    }
                } else {
                    self.machine.compute(tid, self.syscall_cycles + copy);
                }
            }
            ExecMode::LibOs => {
                if kind == ThreadKind::App {
                    let p = self.libos.as_mut().expect("libos process");
                    p.shim_mut()
                        .file_transfer(&mut self.machine, tid, bytes, _write)?;
                } else {
                    self.machine.compute(tid, self.syscall_cycles + copy);
                }
            }
        }
        self.fault_tick();
        Ok(())
    }

    // ----- files -------------------------------------------------------

    /// Installs an input file directly (setup phase, unmeasured).
    pub fn put_file(&mut self, name: &str, data: Vec<u8>) {
        self.files.insert(
            name.to_owned(),
            FileEntry {
                data,
                sealed: false,
            },
        );
    }

    /// Size of a file in bytes.
    ///
    /// # Errors
    ///
    /// [`WorkloadError::FileNotFound`] when absent.
    pub fn file_len(&self, name: &str) -> Result<u64, WorkloadError> {
        self.files
            .get(name)
            .map(|f| f.data.len() as u64)
            .ok_or_else(|| WorkloadError::FileNotFound(name.to_owned()))
    }

    /// Raw stored bytes of a file (host view — sealed blocks in PF mode).
    ///
    /// # Errors
    ///
    /// [`WorkloadError::FileNotFound`] when absent.
    pub fn file_raw(&self, name: &str) -> Result<&[u8], WorkloadError> {
        self.files
            .get(name)
            .map(|f| f.data.as_slice())
            .ok_or_else(|| WorkloadError::FileNotFound(name.to_owned()))
    }

    fn pf_active(&self) -> bool {
        self.mode == ExecMode::LibOs
            && self
                .libos
                .as_ref()
                .is_some_and(|p| p.shim().protected_files())
            && self.threads[self.cur].kind == ThreadKind::App
    }

    /// Fetches a file's plaintext: looks it up, lets the fault plane flip
    /// a stored bit (simulated bit rot on the untrusted host), and
    /// unseals PF files. A flip in a sealed file is caught by the block
    /// MAC; a flip in a plaintext file has no integrity check to hide
    /// behind, so it surfaces directly. Either way an injected flip
    /// becomes [`TransientError::IoCorruption`] — re-reading draws fresh.
    fn fetch_plain(&mut self, name: &str) -> Result<Vec<u8>, WorkloadError> {
        let mut entry = self
            .files
            .get(name)
            .ok_or_else(|| WorkloadError::FileNotFound(name.to_owned()))?
            .clone();
        let flipped = self
            .faults
            .as_mut()
            .and_then(|h| h.corrupt_bit(entry.data.len()));
        if let Some(bit) = flipped {
            entry.data[(bit / 8) as usize] ^= 1 << (bit % 8);
        }
        if entry.sealed && self.pf_active() {
            match self.pf_unseal_file(&entry.data) {
                Ok(plain) => Ok(plain),
                // Genuine tampering stays a fatal Validation error;
                // only the injected flip is retry-worthy.
                Err(_) if flipped.is_some() => Err(TransientError::IoCorruption {
                    file: name.to_owned(),
                }
                .into()),
                Err(e) => Err(e),
            }
        } else if flipped.is_some() {
            Err(TransientError::IoCorruption {
                file: name.to_owned(),
            }
            .into())
        } else {
            Ok(entry.data)
        }
    }

    /// Reads a whole file through the mode's I/O path into `region` at
    /// `off`; returns the plaintext byte count.
    ///
    /// # Errors
    ///
    /// [`WorkloadError::FileNotFound`] when absent;
    /// [`WorkloadError::Validation`] when a PF block fails verification;
    /// [`WorkloadError::Transient`] when the fault plane corrupted the
    /// read.
    pub fn read_file_into(
        &mut self,
        name: &str,
        region: Region,
        off: u64,
    ) -> Result<u64, WorkloadError> {
        let plain = self.fetch_plain(name)?;
        self.charge_file_io(plain.len() as u64, false)?;
        self.write_bytes(region, off, &plain);
        Ok(plain.len() as u64)
    }

    /// Reads a whole file into a fresh byte vector (small files; the
    /// bytes land in unmodeled scratch space, only I/O costs are
    /// charged).
    ///
    /// # Errors
    ///
    /// Same as [`Env::read_file_into`].
    pub fn read_file(&mut self, name: &str) -> Result<Vec<u8>, WorkloadError> {
        let plain = self.fetch_plain(name)?;
        self.charge_file_io(plain.len() as u64, false)?;
        Ok(plain)
    }

    /// Writes `len` bytes of `region` (from `off`) to a file through the
    /// mode's I/O path; PF mode seals each 4 KiB block with real crypto.
    ///
    /// # Errors
    ///
    /// Propagates transition failures.
    pub fn write_file_from(
        &mut self,
        name: &str,
        region: Region,
        off: u64,
        len: u64,
    ) -> Result<(), WorkloadError> {
        let mut buf = vec![0u8; len as usize];
        self.read_bytes(region, off, &mut buf);
        self.write_file(name, &buf)
    }

    /// Writes `data` to a file through the mode's I/O path.
    ///
    /// # Errors
    ///
    /// Propagates transition failures.
    pub fn write_file(&mut self, name: &str, data: &[u8]) -> Result<(), WorkloadError> {
        self.charge_file_io(data.len() as u64, true)?;
        let entry = if self.pf_active() {
            FileEntry {
                data: self.pf_seal_file(data),
                sealed: true,
            }
        } else {
            FileEntry {
                data: data.to_vec(),
                sealed: false,
            }
        };
        self.files.insert(name.to_owned(), entry);
        Ok(())
    }

    fn charge_file_io(&mut self, bytes: u64, write: bool) -> Result<(), WorkloadError> {
        let tid = self.threads[self.cur].id;
        let kind = self.threads[self.cur].kind;
        let copy = bytes.div_ceil(1024) * self.copy_cycles_per_kib;
        match self.mode {
            ExecMode::Vanilla => {
                let chunks = bytes.div_ceil(self.io_batch).max(1);
                self.machine
                    .compute(tid, self.syscall_cycles * chunks + copy);
            }
            ExecMode::Native => {
                if self.machine.current_enclave(tid).is_some() {
                    let chunks = bytes.div_ceil(self.io_batch).max(1);
                    for _ in 0..chunks {
                        self.machine
                            .ocall(tid, self.syscall_cycles + copy / chunks)?;
                    }
                } else {
                    let chunks = bytes.div_ceil(self.io_batch).max(1);
                    self.machine
                        .compute(tid, self.syscall_cycles * chunks + copy);
                }
            }
            ExecMode::LibOs => {
                if kind == ThreadKind::App {
                    let p = self.libos.as_mut().expect("libos process");
                    p.shim_mut()
                        .file_transfer(&mut self.machine, tid, bytes, write)?;
                } else {
                    let chunks = bytes.div_ceil(self.io_batch).max(1);
                    self.machine
                        .compute(tid, self.syscall_cycles * chunks + copy);
                }
            }
        }
        self.fault_tick();
        Ok(())
    }

    fn pf_seal_file(&mut self, data: &[u8]) -> Vec<u8> {
        let p = self.libos.as_mut().expect("pf requires libos");
        let mut out = Vec::with_capacity(data.len() + data.len() / 64);
        for block in data.chunks(PAGE_SIZE as usize) {
            let blob = p.shim_mut().pf_seal(block);
            let bytes = blob.to_bytes();
            out.extend_from_slice(&(bytes.len() as u32).to_le_bytes());
            out.extend_from_slice(&bytes);
        }
        out
    }

    fn pf_unseal_file(&mut self, data: &[u8]) -> Result<Vec<u8>, WorkloadError> {
        let p = self.libos.as_mut().expect("pf requires libos");
        let mut out = Vec::with_capacity(data.len());
        let mut pos = 0usize;
        while pos < data.len() {
            if pos + 4 > data.len() {
                return Err(WorkloadError::Validation(
                    "truncated PF block header".into(),
                ));
            }
            let len = u32::from_le_bytes(data[pos..pos + 4].try_into().expect("4 bytes")) as usize;
            pos += 4;
            if pos + len > data.len() {
                return Err(WorkloadError::Validation("truncated PF block".into()));
            }
            let blob = sgx_crypto::SealedBlob::from_bytes(&data[pos..pos + len])
                .map_err(|e| WorkloadError::Validation(format!("PF block parse: {e}")))?;
            let plain = p
                .shim()
                .pf_open(&blob)
                .map_err(|e| WorkloadError::Validation(format!("PF block MAC: {e}")))?;
            out.extend_from_slice(&plain);
            pos += len;
        }
        Ok(out)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::modes::ExecMode;

    fn env(mode: ExecMode) -> Env {
        Env::new(EnvConfig::quick_test(mode)).unwrap()
    }

    #[test]
    fn region_roundtrip_all_modes() {
        for mode in ExecMode::ALL {
            let mut e = env(mode);
            e.start_app().unwrap();
            let r = e.alloc(4096, Placement::Protected).unwrap();
            // Protected memory must be touched from the secure world in
            // Native mode; secure_call is a plain call elsewhere.
            e.secure_call(|e| {
                e.write_u64(r, 8, 0xdead_beef);
                assert_eq!(e.read_u64(r, 8), 0xdead_beef, "{mode}");
                e.write_u32(r, 100, 7);
                assert_eq!(e.read_u32(r, 100), 7);
                e.write_f64(r, 200, 2.5);
                assert_eq!(e.read_f64(r, 200), 2.5);
            })
            .unwrap();
        }
    }

    #[test]
    fn protected_region_hits_epc_only_in_sgx_modes() {
        let mut v = env(ExecMode::Vanilla);
        v.start_app().unwrap();
        let r = v.alloc(4096, Placement::Protected).unwrap();
        v.write_u64(r, 0, 1);
        assert_eq!(v.machine().sgx_counters().epc_faults, 0);
        assert!(!v.region_protected(r));

        let mut n = env(ExecMode::Native);
        n.start_app().unwrap();
        let r = n.alloc(4096, Placement::Protected).unwrap();
        assert!(n.region_protected(r));
        n.secure_call(|env| env.write_u64(r, 0, 1)).unwrap();
        assert!(n.machine().sgx_counters().epc_faults > 0);
    }

    #[test]
    fn secure_call_is_ecall_only_in_native() {
        let mut n = env(ExecMode::Native);
        n.start_app().unwrap();
        n.secure_call(|_| ()).unwrap();
        assert_eq!(n.machine().sgx_counters().ecalls, 1);

        let mut l = env(ExecMode::LibOs);
        l.start_app().unwrap();
        l.reset_measurement();
        l.secure_call(|_| ()).unwrap();
        assert_eq!(
            l.machine().sgx_counters().ecalls,
            0,
            "LibOS is already inside"
        );

        let mut v = env(ExecMode::Vanilla);
        v.start_app().unwrap();
        v.secure_call(|_| ()).unwrap();
        assert_eq!(v.machine().sgx_counters().ecalls, 0);
    }

    #[test]
    fn nested_secure_call_single_transition() {
        let mut n = env(ExecMode::Native);
        n.start_app().unwrap();
        n.secure_call(|env| env.secure_call(|_| ()).unwrap())
            .unwrap();
        assert_eq!(n.machine().sgx_counters().ecalls, 1);
    }

    #[test]
    fn file_roundtrip_all_modes() {
        for mode in ExecMode::ALL {
            let mut e = env(mode);
            e.put_file("input", vec![1, 2, 3, 4]);
            e.start_app().unwrap();
            let data = e.read_file("input").unwrap();
            assert_eq!(data, vec![1, 2, 3, 4], "{mode}");
            e.write_file("output", &[9, 8, 7]).unwrap();
            assert_eq!(e.read_file("output").unwrap(), vec![9, 8, 7], "{mode}");
        }
    }

    #[test]
    fn missing_file_errors() {
        let mut e = env(ExecMode::Vanilla);
        assert!(matches!(
            e.read_file("nope"),
            Err(WorkloadError::FileNotFound(_))
        ));
    }

    #[test]
    fn pf_mode_seals_on_disk_but_roundtrips() {
        let mut e =
            Env::new(EnvConfig::quick_test(ExecMode::LibOs).with_protected_files()).unwrap();
        e.start_app().unwrap();
        e.write_file("secret", b"plaintext payload").unwrap();
        // Host view must not contain the plaintext.
        let raw = e.file_raw("secret").unwrap().to_vec();
        assert!(
            !raw.windows(9).any(|w| w == b"plaintext"),
            "PF leaked plaintext"
        );
        // App view round-trips.
        assert_eq!(e.read_file("secret").unwrap(), b"plaintext payload");
    }

    #[test]
    fn libos_file_io_goes_through_shim_ocalls() {
        let mut e = env(ExecMode::LibOs);
        e.put_file("big", vec![0u8; 1 << 20]);
        e.start_app().unwrap();
        e.reset_measurement();
        let r = e.alloc(1 << 20, Placement::Protected).unwrap();
        e.read_file_into("big", r, 0).unwrap();
        assert!(
            e.machine().sgx_counters().ocalls >= 4,
            "batched file OCALLs expected"
        );
    }

    #[test]
    fn native_file_io_uses_ocalls_only_inside_enclave() {
        let mut e = env(ExecMode::Native);
        e.put_file("f", vec![0u8; 128 << 10]);
        e.start_app().unwrap();
        e.reset_measurement();
        let r = e.alloc(128 << 10, Placement::Untrusted).unwrap();
        e.read_file_into("f", r, 0).unwrap(); // outside enclave
        assert_eq!(e.machine().sgx_counters().ocalls, 0);
        e.secure_call(|env| env.read_file_into("f", r, 0).map(|_| ()))
            .unwrap()
            .unwrap();
        assert!(e.machine().sgx_counters().ocalls >= 2);
    }

    #[test]
    fn parallel_forks_and_joins_clocks() {
        let mut e = env(ExecMode::Vanilla);
        e.start_app().unwrap();
        let a = e.spawn_app_thread().unwrap();
        let b = e.spawn_app_thread().unwrap();
        e.compute(1_000); // main is at 1000 at fork
        e.parallel(&[a, b], |env, i| {
            env.compute((i as u64 + 1) * 500);
        });
        assert!(e.now_of(a) >= 1_500);
        assert!(e.now_of(b) >= 2_000);
        assert_eq!(e.now(), e.now_of(b), "main joined to slowest worker");
    }

    #[test]
    fn libos_app_threads_enter_enclave() {
        let mut e = env(ExecMode::LibOs);
        e.start_app().unwrap();
        e.reset_measurement();
        let t = e.spawn_app_thread().unwrap();
        assert_eq!(e.machine().sgx_counters().ecalls, 1);
        // App thread accesses protected memory without further ECALLs.
        let r = e.alloc(4096, Placement::Protected).unwrap();
        e.with_thread(t, |env| env.write_u64(r, 0, 5));
        assert_eq!(e.machine().sgx_counters().ecalls, 1);
    }

    #[test]
    fn driver_threads_stay_untrusted() {
        let mut e = env(ExecMode::LibOs);
        e.start_app().unwrap();
        e.reset_measurement();
        let d = e.spawn_driver_thread();
        e.with_thread(d, |env| env.host_syscall().unwrap());
        assert_eq!(e.machine().sgx_counters().ecalls, 0);
        assert_eq!(e.machine().sgx_counters().ocalls, 0);
    }

    #[test]
    fn touch_drives_counters_without_data() {
        let mut e = env(ExecMode::Vanilla);
        let r = e.alloc(1 << 20, Placement::Untrusted).unwrap();
        let before = e.machine().mem().counters().mem_reads;
        e.touch(r, 0, 1 << 20, false);
        let delta = e.machine().mem().counters().mem_reads - before;
        assert_eq!(delta, (1 << 20) / 64, "one read per line");
    }

    #[test]
    #[should_panic]
    fn out_of_bounds_read_panics() {
        let mut e = env(ExecMode::Vanilla);
        let r = e.alloc(8, Placement::Untrusted).unwrap();
        let _ = e.read_u64(r, 4);
    }

    #[test]
    fn watchdog_panics_with_typed_payload() {
        let mut e = env(ExecMode::Vanilla);
        e.arm_cycle_budget(10_000);
        let payload = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| loop {
            e.compute(5_000);
        }))
        .expect_err("the watchdog must fire");
        let exceeded = payload
            .downcast_ref::<CycleBudgetExceeded>()
            .expect("typed watchdog payload");
        assert_eq!(exceeded.budget_cycles, 10_000);
        assert!(exceeded.elapsed_cycles > 10_000);
    }

    #[test]
    fn injected_aex_storm_reaches_the_counters() {
        let mut e = env(ExecMode::Native);
        e.start_app().unwrap();
        let hook = faults::FaultPlan::parse("seed=1,aex=2@20000")
            .unwrap()
            .compile(0);
        e.set_fault_hook(hook);
        let r = e.alloc(64 << 10, Placement::Protected).unwrap();
        e.secure_call(|env| {
            for _ in 0..50 {
                env.touch(r, 0, 64 << 10, false);
                env.compute(10_000);
            }
        })
        .unwrap();
        let c = e.machine().sgx_counters();
        assert!(c.injected_aex > 0, "storm must fire inside the enclave");
        assert_eq!(c.aex_exits, c.epc_faults + c.injected_aex);
        assert!(e.machine().check_invariants().is_ok());
    }

    #[test]
    fn syscall_faults_are_transient_and_still_charged() {
        let mut e = env(ExecMode::Vanilla);
        e.set_fault_hook(
            faults::FaultPlan::parse("seed=3,syscall=1000")
                .unwrap()
                .compile(0),
        );
        let before = e.now();
        let err = e.host_syscall().expect_err("permille 1000 always fails");
        assert_eq!(err.class(), crate::workload::ErrorClass::Transient, "{err}");
        assert!(e.now() > before, "the failed syscall still cost cycles");
    }

    #[test]
    fn bitflip_surfaces_as_transient_corruption() {
        let mut e = env(ExecMode::Vanilla);
        e.put_file("data", vec![7u8; 4096]);
        e.set_fault_hook(
            faults::FaultPlan::parse("seed=4,bitflip=1000")
                .unwrap()
                .compile(0),
        );
        let err = e.read_file("data").expect_err("always corrupted");
        assert!(matches!(
            err,
            WorkloadError::Transient(TransientError::IoCorruption { .. })
        ));
        // Without the hook the very same file reads back clean: the
        // corruption lives in the fault plane, not the stored bytes.
        let mut clean = env(ExecMode::Vanilla);
        clean.put_file("data", vec![7u8; 4096]);
        assert_eq!(clean.read_file("data").unwrap(), vec![7u8; 4096]);
    }
}
