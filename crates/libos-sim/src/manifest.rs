//! Graphene manifest files (§4.4).
//!
//! Graphene configures an application through a manifest: the binary,
//! required libraries and input files (hashed and verified at execution
//! time), the enclave size, and the thread count. We keep the same model
//! with a minimal `key = value` text format:
//!
//! ```text
//! binary = lighttpd
//! enclave_size = 4294967296
//! threads = 16
//! internal_memory = 67108864
//! protected_files = false
//! trusted_file = conf/lighttpd.conf
//! trusted_file = htdocs/index.html
//! ```

use sgx_crypto::Sha256;
use std::collections::BTreeMap;
use std::error::Error;
use std::fmt;

/// Errors parsing or validating a manifest.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ManifestError {
    /// A line was not `key = value`.
    Syntax(usize),
    /// A numeric field failed to parse.
    BadNumber(&'static str),
    /// A boolean field failed to parse.
    BadBool(&'static str),
    /// The mandatory `binary` field is missing.
    MissingBinary,
    /// `enclave_size` below the minimum Graphene can boot with.
    EnclaveTooSmall,
}

impl fmt::Display for ManifestError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ManifestError::Syntax(line) => write!(f, "manifest syntax error on line {line}"),
            ManifestError::BadNumber(k) => write!(f, "manifest field `{k}` is not a number"),
            ManifestError::BadBool(k) => write!(f, "manifest field `{k}` is not true/false"),
            ManifestError::MissingBinary => write!(f, "manifest is missing the `binary` field"),
            ManifestError::EnclaveTooSmall => write!(f, "enclave_size below the LibOS minimum"),
        }
    }
}

impl Error for ManifestError {}

/// Smallest enclave the modeled LibOS can boot in: runtime image plus
/// internal memory plus one spare megabyte.
pub const MIN_ENCLAVE_BYTES: u64 = 96 << 20;

/// A parsed, validated manifest.
///
/// Defaults mirror Table 3 of the paper: 4 GB enclave, 16 threads, 64 MB
/// internal memory, protected files off.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Manifest {
    binary: String,
    enclave_size: u64,
    threads: usize,
    internal_memory: u64,
    protected_files: bool,
    trusted_files: Vec<String>,
}

impl Manifest {
    /// Starts building a manifest for `binary`.
    pub fn builder(binary: &str) -> ManifestBuilder {
        ManifestBuilder {
            binary: binary.to_owned(),
            enclave_size: 4 << 30,
            threads: 16,
            internal_memory: 64 << 20,
            protected_files: false,
            trusted_files: Vec::new(),
        }
    }

    /// Parses the text format shown in the module docs.
    ///
    /// # Errors
    ///
    /// Returns a [`ManifestError`] describing the first problem found.
    pub fn parse(text: &str) -> Result<Manifest, ManifestError> {
        let mut fields: BTreeMap<&str, &str> = BTreeMap::new();
        let mut trusted = Vec::new();
        for (i, raw) in text.lines().enumerate() {
            let line = raw.trim();
            if line.is_empty() || line.starts_with('#') {
                continue;
            }
            let (k, v) = line.split_once('=').ok_or(ManifestError::Syntax(i + 1))?;
            let (k, v) = (k.trim(), v.trim());
            if k.is_empty() || v.is_empty() {
                return Err(ManifestError::Syntax(i + 1));
            }
            if k == "trusted_file" {
                trusted.push(v.to_owned());
            } else {
                fields.insert(k, v);
            }
        }
        let mut b = Manifest::builder(fields.get("binary").ok_or(ManifestError::MissingBinary)?);
        if let Some(v) = fields.get("enclave_size") {
            b = b.enclave_size(
                v.parse()
                    .map_err(|_| ManifestError::BadNumber("enclave_size"))?,
            );
        }
        if let Some(v) = fields.get("threads") {
            b = b.threads(v.parse().map_err(|_| ManifestError::BadNumber("threads"))?);
        }
        if let Some(v) = fields.get("internal_memory") {
            b = b.internal_memory(
                v.parse()
                    .map_err(|_| ManifestError::BadNumber("internal_memory"))?,
            );
        }
        if let Some(v) = fields.get("protected_files") {
            b = b.protected_files(match *v {
                "true" => true,
                "false" => false,
                _ => return Err(ManifestError::BadBool("protected_files")),
            });
        }
        for f in trusted {
            b = b.trusted_file(&f);
        }
        b.try_build()
    }

    /// The application binary name.
    pub fn binary(&self) -> &str {
        &self.binary
    }

    /// Enclave size property (bytes).
    pub fn enclave_size(&self) -> u64 {
        self.enclave_size
    }

    /// TCS / thread count.
    pub fn threads(&self) -> usize {
        self.threads
    }

    /// LibOS internal memory (bytes).
    pub fn internal_memory(&self) -> u64 {
        self.internal_memory
    }

    /// Whether protected-files mode is on.
    pub fn protected_files(&self) -> bool {
        self.protected_files
    }

    /// Input files whose hashes are verified at execution time.
    pub fn trusted_files(&self) -> &[String] {
        &self.trusted_files
    }

    /// The measurement Graphene computes over the manifest and trusted
    /// files, checked before launch.
    pub fn measurement(&self) -> [u8; 32] {
        let mut h = Sha256::new();
        h.update(self.binary.as_bytes());
        h.update(&self.enclave_size.to_le_bytes());
        h.update(&(self.threads as u64).to_le_bytes());
        h.update(&self.internal_memory.to_le_bytes());
        h.update(&[self.protected_files as u8]);
        for f in &self.trusted_files {
            h.update(f.as_bytes());
        }
        h.finalize()
    }
}

/// Builder for [`Manifest`].
#[derive(Debug, Clone)]
pub struct ManifestBuilder {
    binary: String,
    enclave_size: u64,
    threads: usize,
    internal_memory: u64,
    protected_files: bool,
    trusted_files: Vec<String>,
}

impl ManifestBuilder {
    /// Sets the enclave size property.
    pub fn enclave_size(mut self, bytes: u64) -> Self {
        self.enclave_size = bytes;
        self
    }

    /// Sets the TCS / thread count.
    pub fn threads(mut self, n: usize) -> Self {
        self.threads = n;
        self
    }

    /// Sets the LibOS internal memory.
    pub fn internal_memory(mut self, bytes: u64) -> Self {
        self.internal_memory = bytes;
        self
    }

    /// Toggles protected-files mode.
    pub fn protected_files(mut self, on: bool) -> Self {
        self.protected_files = on;
        self
    }

    /// Registers a trusted input file.
    pub fn trusted_file(mut self, path: &str) -> Self {
        self.trusted_files.push(path.to_owned());
        self
    }

    /// Validates and builds.
    ///
    /// # Errors
    ///
    /// [`ManifestError::EnclaveTooSmall`] when the enclave cannot hold
    /// the LibOS runtime and its internal memory.
    pub fn try_build(self) -> Result<Manifest, ManifestError> {
        if self.enclave_size < MIN_ENCLAVE_BYTES.max(self.internal_memory * 3 / 2) {
            return Err(ManifestError::EnclaveTooSmall);
        }
        Ok(Manifest {
            binary: self.binary,
            enclave_size: self.enclave_size,
            threads: self.threads,
            internal_memory: self.internal_memory,
            protected_files: self.protected_files,
            trusted_files: self.trusted_files,
        })
    }

    /// Builds, panicking on validation failure.
    ///
    /// # Panics
    ///
    /// Panics when [`ManifestBuilder::try_build`] would return an error.
    pub fn build(self) -> Manifest {
        self.try_build().expect("invalid manifest")
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn defaults_match_table3() {
        let m = Manifest::builder("app").build();
        assert_eq!(m.enclave_size(), 4 << 30);
        assert_eq!(m.threads(), 16);
        assert_eq!(m.internal_memory(), 64 << 20);
        assert!(!m.protected_files());
    }

    #[test]
    fn parse_roundtrip() {
        let text = "\
# comment
binary = lighttpd
enclave_size = 1073741824
threads = 8
internal_memory = 33554432
protected_files = true
trusted_file = conf/a.conf
trusted_file = htdocs/index.html
";
        let m = Manifest::parse(text).unwrap();
        assert_eq!(m.binary(), "lighttpd");
        assert_eq!(m.enclave_size(), 1 << 30);
        assert_eq!(m.threads(), 8);
        assert!(m.protected_files());
        assert_eq!(m.trusted_files().len(), 2);
    }

    #[test]
    fn parse_errors() {
        assert_eq!(
            Manifest::parse("not a kv line"),
            Err(ManifestError::Syntax(1))
        );
        assert_eq!(
            Manifest::parse("binary = a\nenclave_size = big"),
            Err(ManifestError::BadNumber("enclave_size"))
        );
        assert_eq!(
            Manifest::parse("threads = 4"),
            Err(ManifestError::MissingBinary)
        );
        assert_eq!(
            Manifest::parse("binary = a\nprotected_files = maybe"),
            Err(ManifestError::BadBool("protected_files"))
        );
    }

    #[test]
    fn tiny_enclave_rejected() {
        assert_eq!(
            Manifest::builder("a").enclave_size(1 << 20).try_build(),
            Err(ManifestError::EnclaveTooSmall)
        );
    }

    #[test]
    fn measurement_depends_on_contents() {
        let a = Manifest::builder("a").build();
        let b = Manifest::builder("a").threads(8).build();
        let c = Manifest::builder("a").trusted_file("x").build();
        assert_ne!(a.measurement(), b.measurement());
        assert_ne!(a.measurement(), c.measurement());
    }
}
