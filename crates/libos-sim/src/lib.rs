//! A Graphene-like library operating system on the SGX model.
//!
//! The paper executes 4 of its 10 workloads only under GrapheneSGX and
//! all 10 under it for the LibOS-mode studies (§4.4, §5.4). The LibOS is
//! responsible for the behaviors the paper measures:
//!
//! * **manifest** ([`manifest::Manifest`]): enclave size (4 GB default),
//!   thread count (16), internal memory (64 MB), protected-files toggle,
//!   trusted-file hashes,
//! * **start-up** ([`process::LibosProcess::launch`]): the whole enclave
//!   size streams through the EPC for measurement (≈1 M evictions for
//!   4 GB), the runtime performs its ≈300 ECALLs / ≈1000 OCALLs / ≈1000
//!   AEX dance, and the internal allocator touches its 64 MB (Fig 6a,
//!   Fig 9, Appendix D),
//! * **shielded syscalls** ([`shim::Shim`]): every syscall is handled
//!   in-enclave; file I/O moves through untrusted staging buffers via
//!   (batched) OCALLs,
//! * **protected files** ([`shim`] with [`manifest::Manifest::protected_files`]):
//!   transparent per-4 KiB-block authenticated encryption, the feature
//!   whose cost Appendix E / Fig 10 quantifies.
//!
//! # Example
//!
//! ```
//! use libos_sim::{Manifest, LibosProcess};
//! use sgx_sim::{SgxMachine, SgxConfig};
//!
//! let mut m = SgxMachine::new(SgxConfig::with_tiny_epc(4096, 16));
//! let t = m.add_thread();
//! let manifest = Manifest::builder("app").enclave_size(256 << 20).build();
//! let proc_ = LibosProcess::launch(&mut m, t, &manifest).unwrap();
//! assert!(proc_.startup().ecalls > 0);
//! ```

#![forbid(unsafe_code)]
#![deny(missing_docs)]

pub mod manifest;
pub mod process;
pub mod shim;

pub use manifest::{Manifest, ManifestBuilder, ManifestError};
pub use process::{LibosProcess, StartupStats};
pub use shim::{Shim, ShimConfig};
