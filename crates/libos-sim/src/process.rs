//! LibOS process lifecycle: launch (the expensive part) and enclave
//! entry for application threads.
//!
//! Launch reproduces the start-up behaviour the paper measures for an
//! "empty" Graphene workload (Fig 6a, Appendix D):
//!
//! * the enclave-size property (4 GB by default) streams through the EPC
//!   for measurement ⇒ ≈1 M EPC evictions,
//! * the runtime performs ≈300 ECALLs and ≈1000 OCALLs while loading the
//!   binary, libraries and trusted files,
//! * demand-touching the runtime image and the first slice of internal
//!   memory produces ≈1000 AEX page-fault exits,
//! * only the runtime-image pages (a couple of MB) are ELDU'd back of
//!   the million evicted.

use crate::manifest::Manifest;
use crate::shim::{Shim, ShimConfig};
use mem_sim::{AccessKind, ThreadId, PAGE_SIZE};
use sgx_sim::{EnclaveId, SgxError, SgxMachine};

/// Size of the modeled LibOS runtime image (loader + libc + runtime):
/// these pages are measured content and load back after launch.
pub const RUNTIME_IMAGE_BYTES: u64 = 28 << 20;

/// Slice of internal memory the allocator touches eagerly at start-up.
const INTERNAL_WARMUP_BYTES: u64 = 1 << 20;

/// ECALLs the runtime performs while bootstrapping.
const STARTUP_ECALLS: u64 = 300;

/// Host calls (file opens/reads of libraries, futexes) at bootstrap.
const STARTUP_OCALLS: u64 = 1_000;

/// What launch cost, mirroring the counters of Fig 6a.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct StartupStats {
    /// ECALLs during start-up (paper: ≈300).
    pub ecalls: u64,
    /// OCALLs during start-up (paper: ≈1000).
    pub ocalls: u64,
    /// AEX exits during start-up (paper: ≈1000).
    pub aex_exits: u64,
    /// EPC evictions during start-up (paper: ≈1 M for a 4 GB enclave).
    pub epc_evictions: u64,
    /// EPC pages loaded back during start-up (paper: ≈700).
    pub epc_loadbacks: u64,
    /// Total start-up cycles (excluded from workload run time, App. D).
    pub cycles: u64,
}

/// A launched LibOS process.
#[derive(Debug)]
pub struct LibosProcess {
    enclave: EnclaveId,
    shim: Shim,
    startup: StartupStats,
    app_binary: String,
}

impl LibosProcess {
    /// Launches `manifest` on `machine`, charging start-up to `tid`.
    ///
    /// # Errors
    ///
    /// Propagates [`SgxError`] from enclave creation or the bootstrap
    /// transitions.
    pub fn launch(
        machine: &mut SgxMachine,
        tid: ThreadId,
        manifest: &Manifest,
    ) -> Result<LibosProcess, SgxError> {
        let cycles_before = machine.mem().cycles_of(tid);
        let sgx_before = *machine.sgx_counters();

        // ECREATE + whole-ELRANGE measurement + EINIT.
        let enclave = machine.create_enclave(manifest.enclave_size(), RUNTIME_IMAGE_BYTES)?;

        let mut shim = Shim::new(
            ShimConfig::default(),
            manifest.protected_files(),
            b"sgxgauge-platform",
        );

        // Bootstrap: the runtime enters, loads libraries/trusted files
        // via host calls, and touches its image + early internal memory.
        machine.ecall_enter(tid, enclave)?;
        let base = machine.enclave(enclave).base();
        // Demand-touch the hot tenth of the runtime image: each page
        // AEXes and ELDUs back (paper: ~700 pages / ~2 MB load back).
        let image_pages = RUNTIME_IMAGE_BYTES / PAGE_SIZE / 10;
        for p in 0..image_pages {
            machine.access(tid, base + p * PAGE_SIZE, 8, AccessKind::Read);
        }
        // Library/file loading host calls. Trusted files add hashing work.
        let extra = manifest.trusted_files().len() as u64 * 4;
        for _ in 0..STARTUP_OCALLS + extra {
            shim.syscall_host(machine, tid)?;
        }
        // Warm a slice of the internal allocator.
        let internal = machine.alloc_enclave_heap(
            enclave,
            manifest.internal_memory().min(INTERNAL_WARMUP_BYTES * 4),
        )?;
        for p in 0..(INTERNAL_WARMUP_BYTES / PAGE_SIZE) {
            machine.access(tid, internal + p * PAGE_SIZE, 8, AccessKind::Write);
        }
        machine.ecall_exit(tid, enclave)?;
        // Runtime bootstrap RPCs (minus the one above).
        for _ in 0..STARTUP_ECALLS - 1 {
            machine.ecall_enter(tid, enclave)?;
            machine.ecall_exit(tid, enclave)?;
        }

        let sgx_after = *machine.sgx_counters();
        let startup = StartupStats {
            ecalls: sgx_after.ecalls - sgx_before.ecalls,
            ocalls: (sgx_after.ocalls + sgx_after.switchless_ocalls)
                - (sgx_before.ocalls + sgx_before.switchless_ocalls),
            aex_exits: sgx_after.aex_exits - sgx_before.aex_exits,
            epc_evictions: sgx_after.epc_evictions - sgx_before.epc_evictions,
            epc_loadbacks: sgx_after.epc_loadbacks - sgx_before.epc_loadbacks,
            cycles: machine.mem().cycles_of(tid) - cycles_before,
        };
        shim.reset_stats();
        Ok(LibosProcess {
            enclave,
            shim,
            startup,
            app_binary: manifest.binary().to_owned(),
        })
    }

    /// The enclave this process runs in.
    pub fn enclave(&self) -> EnclaveId {
        self.enclave
    }

    /// The application binary named by the manifest.
    pub fn binary(&self) -> &str {
        &self.app_binary
    }

    /// Start-up statistics (Fig 6a / Appendix D).
    pub fn startup(&self) -> StartupStats {
        self.startup
    }

    /// The shielded-syscall interface.
    pub fn shim(&self) -> &Shim {
        &self.shim
    }

    /// Mutable shim (to issue syscalls).
    pub fn shim_mut(&mut self) -> &mut Shim {
        &mut self.shim
    }

    /// Enters the process enclave on `tid` (application threads run
    /// entirely inside; this is done once per thread, not per call).
    ///
    /// # Errors
    ///
    /// Propagates [`SgxError`].
    pub fn enter(&self, machine: &mut SgxMachine, tid: ThreadId) -> Result<(), SgxError> {
        machine.ecall_enter(tid, self.enclave)
    }

    /// Leaves the process enclave on `tid`.
    ///
    /// # Errors
    ///
    /// Propagates [`SgxError`].
    pub fn exit(&self, machine: &mut SgxMachine, tid: ThreadId) -> Result<(), SgxError> {
        machine.ecall_exit(tid, self.enclave)
    }

    /// Allocates protected application memory inside the enclave.
    ///
    /// # Errors
    ///
    /// [`SgxError::OutOfEnclaveMemory`] when the ELRANGE is exhausted.
    pub fn alloc(&self, machine: &mut SgxMachine, bytes: u64) -> Result<u64, SgxError> {
        machine.alloc_enclave_heap(self.enclave, bytes)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use sgx_sim::SgxConfig;

    /// A machine with a paper-scale EPC (92 MB) but nothing else running.
    fn machine() -> (SgxMachine, ThreadId) {
        let mut m = SgxMachine::new(SgxConfig::default());
        let t = m.add_thread();
        (m, t)
    }

    #[test]
    fn empty_workload_startup_matches_fig6a_shape() {
        let (mut m, t) = machine();
        // 4 GB enclave, per Table 3.
        let manifest = Manifest::builder("empty").build();
        let p = LibosProcess::launch(&mut m, t, &manifest).unwrap();
        let s = p.startup();
        // Paper: ~300 ECALLs, ~1000 OCALLs, ~1000 AEX, ~1M evictions,
        // only ~hundreds of loadbacks.
        assert!((250..=400).contains(&s.ecalls), "ecalls {}", s.ecalls);
        assert!((800..=1400).contains(&s.ocalls), "ocalls {}", s.ocalls);
        assert!((800..=2000).contains(&s.aex_exits), "aex {}", s.aex_exits);
        assert!(s.epc_evictions > 900_000, "evictions {}", s.epc_evictions);
        assert!(s.epc_loadbacks < 2_000, "loadbacks {}", s.epc_loadbacks);
        assert!(s.epc_loadbacks > 100, "loadbacks {}", s.epc_loadbacks);
    }

    #[test]
    fn smaller_enclave_fewer_evictions() {
        let (mut m, t) = machine();
        let small = Manifest::builder("a").enclave_size(256 << 20).build();
        let p = LibosProcess::launch(&mut m, t, &small).unwrap();
        assert!(p.startup().epc_evictions < 100_000);
    }

    #[test]
    fn enter_exit_and_alloc() {
        let (mut m, t) = machine();
        let manifest = Manifest::builder("a").enclave_size(512 << 20).build();
        let p = LibosProcess::launch(&mut m, t, &manifest).unwrap();
        p.enter(&mut m, t).unwrap();
        let buf = p.alloc(&mut m, 1 << 20).unwrap();
        m.access(t, buf, 64, AccessKind::Write);
        p.exit(&mut m, t).unwrap();
        assert!(m.enclave(p.enclave()).contains(buf));
    }

    #[test]
    fn startup_excludable_via_reset() {
        let (mut m, t) = machine();
        let manifest = Manifest::builder("a").enclave_size(512 << 20).build();
        let p = LibosProcess::launch(&mut m, t, &manifest).unwrap();
        assert!(p.startup().epc_evictions > 0);
        m.reset_measurement();
        assert_eq!(m.sgx_counters().epc_evictions, 0);
        assert_eq!(m.mem().cycles_of(t), 0);
    }
}
