//! The shielded-syscall layer.
//!
//! Under Graphene the application never talks to the OS directly: the
//! LibOS intercepts each syscall inside the enclave, services what it can
//! from in-enclave state, and forwards the rest through OCALLs — batching
//! bulk file I/O into large transfers through untrusted staging buffers.
//! With protected files (PF) enabled, every 4 KiB file block is
//! additionally encrypted + MACed before it leaves the enclave and
//! verified + decrypted on the way in (Appendix E).

use mem_sim::ThreadId;
use sgx_crypto::{SealError, SealedBlob, SealingKey};
use sgx_sim::{SgxError, SgxMachine};

/// Cost parameters of the shim.
#[derive(Debug, Clone)]
pub struct ShimConfig {
    /// In-enclave cycles to decode + dispatch one intercepted syscall.
    pub dispatch_cycles: u64,
    /// Untrusted-side work per forwarded OCALL (the actual host syscall).
    pub ocall_work_cycles: u64,
    /// Bytes of file I/O coalesced into one OCALL.
    pub batch_bytes: u64,
    /// Copy cost through the untrusted staging buffer, cycles per KiB.
    /// Data crosses the boundary twice (enclave buffer -> staging ->
    /// host), so this is steeper than a plain kernel copy.
    pub copy_cycles_per_kib: u64,
    /// In-enclave crypto cost for protected files, cycles per KiB
    /// (AES-NI-class GCM: ~0.4 cycles/byte).
    pub pf_cycles_per_kib: u64,
    /// Protected-file block size.
    pub pf_block_bytes: u64,
}

impl Default for ShimConfig {
    fn default() -> Self {
        ShimConfig {
            dispatch_cycles: 1_500,
            ocall_work_cycles: 3_500,
            // Graphene coalesces bulk I/O more aggressively than a naive
            // native port's per-64-KiB OCALLs — one reason the paper sees
            // LibOS *beat* Native at large inputs (Table 4: 0.9x at High).
            batch_bytes: 256 << 10,
            copy_cycles_per_kib: 250,
            pf_cycles_per_kib: 450,
            pf_block_bytes: 4096,
        }
    }
}

/// Running statistics of the shim.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct ShimStats {
    /// Intercepted syscalls.
    pub syscalls: u64,
    /// OCALLs forwarded to the host.
    pub forwarded_ocalls: u64,
    /// File bytes read through the shim.
    pub bytes_read: u64,
    /// File bytes written through the shim.
    pub bytes_written: u64,
    /// Protected-file blocks sealed or opened.
    pub pf_blocks: u64,
}

/// The shielded syscall interface one LibOS process exposes to its
/// application. All methods charge their cycle costs to the calling
/// thread on the shared [`SgxMachine`].
#[derive(Debug)]
pub struct Shim {
    cfg: ShimConfig,
    pf: Option<SealingKey>,
    stats: ShimStats,
    pf_nonce: u64,
}

impl Shim {
    /// Creates a shim; `protected_files` arms transparent file crypto
    /// with a key derived from `platform_secret`.
    pub fn new(cfg: ShimConfig, protected_files: bool, platform_secret: &[u8]) -> Self {
        let pf = protected_files.then(|| SealingKey::derive(platform_secret, b"graphene-pf"));
        Shim {
            cfg,
            pf,
            stats: ShimStats::default(),
            pf_nonce: 1,
        }
    }

    /// Whether protected-files mode is armed.
    pub fn protected_files(&self) -> bool {
        self.pf.is_some()
    }

    /// Statistics so far.
    pub fn stats(&self) -> ShimStats {
        self.stats
    }

    /// Resets statistics (not the PF key or nonce).
    pub fn reset_stats(&mut self) {
        self.stats = ShimStats::default();
    }

    /// A cheap, fully in-enclave syscall (e.g. `gettimeofday`, `brk`):
    /// dispatch cost only, no OCALL.
    ///
    /// # Errors
    ///
    /// Propagates [`SgxError`] if the thread is not inside the enclave.
    pub fn syscall_light(&mut self, m: &mut SgxMachine, tid: ThreadId) -> Result<(), SgxError> {
        if m.current_enclave(tid).is_none() {
            return Err(SgxError::NotInEnclave);
        }
        self.stats.syscalls += 1;
        m.mem_mut()
            .trace_emit(tid, trace::TraceEvent::ShimSyscall { host: false });
        m.compute(tid, self.cfg.dispatch_cycles);
        Ok(())
    }

    /// A syscall that must reach the host (e.g. `open`, socket ops):
    /// dispatch plus one forwarded OCALL.
    ///
    /// # Errors
    ///
    /// Propagates [`SgxError`] if the thread is not inside the enclave.
    pub fn syscall_host(&mut self, m: &mut SgxMachine, tid: ThreadId) -> Result<(), SgxError> {
        if m.current_enclave(tid).is_none() {
            return Err(SgxError::NotInEnclave);
        }
        self.stats.syscalls += 1;
        self.stats.forwarded_ocalls += 1;
        m.mem_mut()
            .trace_emit(tid, trace::TraceEvent::ShimSyscall { host: true });
        m.compute(tid, self.cfg.dispatch_cycles);
        m.ocall(tid, self.cfg.ocall_work_cycles)
    }

    /// Charges the transfer path of `bytes` of file I/O (read when
    /// `write` is false): dispatch, batched OCALLs, staging copies, and —
    /// in PF mode — per-block crypto. Returns the number of OCALLs used.
    ///
    /// The caller moves the actual bytes; this models the shim's cost.
    ///
    /// # Errors
    ///
    /// Propagates [`SgxError`] if the thread is not inside the enclave.
    pub fn file_transfer(
        &mut self,
        m: &mut SgxMachine,
        tid: ThreadId,
        bytes: u64,
        write: bool,
    ) -> Result<u64, SgxError> {
        if m.current_enclave(tid).is_none() {
            return Err(SgxError::NotInEnclave);
        }
        self.stats.syscalls += 1;
        m.mem_mut()
            .trace_emit(tid, trace::TraceEvent::ShimSyscall { host: true });
        if write {
            self.stats.bytes_written += bytes;
        } else {
            self.stats.bytes_read += bytes;
        }
        m.compute(tid, self.cfg.dispatch_cycles);
        let ocalls = bytes.div_ceil(self.cfg.batch_bytes).max(1);
        let copy = bytes.div_ceil(1024) * self.cfg.copy_cycles_per_kib;
        // PF crypto happens in-enclave, per block, before/after staging.
        if self.pf.is_some() {
            let blocks = bytes.div_ceil(self.cfg.pf_block_bytes).max(1);
            self.stats.pf_blocks += blocks;
            m.compute(tid, bytes.div_ceil(1024) * self.cfg.pf_cycles_per_kib);
            // One extra forwarded metadata OCALL per few blocks (Merkle
            // bookkeeping), part of why PF is so expensive (Fig 10).
            let meta_ocalls = blocks.div_ceil(32);
            for _ in 0..meta_ocalls {
                self.stats.forwarded_ocalls += 1;
                m.ocall(tid, self.cfg.ocall_work_cycles / 2)?;
            }
        }
        let per_ocall_copy = copy / ocalls.max(1);
        for _ in 0..ocalls {
            self.stats.forwarded_ocalls += 1;
            m.ocall(tid, self.cfg.ocall_work_cycles + per_ocall_copy)?;
        }
        Ok(ocalls)
    }

    /// Seals one protected-file block (real crypto over `data`).
    ///
    /// # Panics
    ///
    /// Panics if PF mode is off — callers must check
    /// [`Shim::protected_files`] first.
    pub fn pf_seal(&mut self, data: &[u8]) -> SealedBlob {
        let key = self.pf.as_ref().expect("pf_seal without protected files");
        let mut nonce = [0u8; 12];
        nonce[..8].copy_from_slice(&self.pf_nonce.to_le_bytes());
        self.pf_nonce += 1;
        key.seal(data, nonce)
    }

    /// Opens one protected-file block.
    ///
    /// # Errors
    ///
    /// [`SealError`] when the blob fails verification.
    ///
    /// # Panics
    ///
    /// Panics if PF mode is off.
    pub fn pf_open(&self, blob: &SealedBlob) -> Result<Vec<u8>, SealError> {
        let key = self.pf.as_ref().expect("pf_open without protected files");
        key.unseal(blob)
    }

    /// The shim's cost configuration.
    pub fn config(&self) -> &ShimConfig {
        &self.cfg
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use mem_sim::PAGE_SIZE;
    use sgx_sim::SgxConfig;

    fn setup() -> (SgxMachine, ThreadId, sgx_sim::EnclaveId) {
        let mut m = SgxMachine::new(SgxConfig::with_tiny_epc(1024, 16));
        let t = m.add_thread();
        let e = m.create_enclave(256 * PAGE_SIZE, 16 * PAGE_SIZE).unwrap();
        m.ecall_enter(t, e).unwrap();
        (m, t, e)
    }

    #[test]
    fn light_syscall_no_ocall() {
        let (mut m, t, _) = setup();
        let mut shim = Shim::new(ShimConfig::default(), false, b"p");
        shim.syscall_light(&mut m, t).unwrap();
        assert_eq!(shim.stats().syscalls, 1);
        assert_eq!(m.sgx_counters().ocalls, 0);
    }

    #[test]
    fn host_syscall_forwards() {
        let (mut m, t, _) = setup();
        let mut shim = Shim::new(ShimConfig::default(), false, b"p");
        shim.syscall_host(&mut m, t).unwrap();
        assert_eq!(m.sgx_counters().ocalls, 1);
    }

    #[test]
    fn file_transfer_batches() {
        let (mut m, t, _) = setup();
        let mut shim = Shim::new(ShimConfig::default(), false, b"p");
        // 1 MiB over 256 KiB batches = 4 OCALLs.
        let ocalls = shim.file_transfer(&mut m, t, 1 << 20, false).unwrap();
        assert_eq!(ocalls, 4);
        assert_eq!(m.sgx_counters().ocalls, 4);
        assert_eq!(shim.stats().bytes_read, 1 << 20);
    }

    #[test]
    fn pf_mode_costs_more_and_adds_ocalls() {
        let (mut m, t, _) = setup();
        m.reset_measurement(); // exclude enclave-build cycles
        let mut plain = Shim::new(ShimConfig::default(), false, b"p");
        plain.file_transfer(&mut m, t, 1 << 20, true).unwrap();
        let plain_cycles = m.mem().cycles_of(t);
        let plain_ocalls = m.sgx_counters().ocalls;

        let (mut m2, t2, _) = setup();
        m2.reset_measurement();
        let mut pf = Shim::new(ShimConfig::default(), true, b"p");
        pf.file_transfer(&mut m2, t2, 1 << 20, true).unwrap();
        assert!(
            m2.mem().cycles_of(t2) > 2 * plain_cycles,
            "PF must be much slower"
        );
        assert!(m2.sgx_counters().ocalls > plain_ocalls);
        assert_eq!(pf.stats().pf_blocks, 256);
    }

    #[test]
    fn pf_seal_roundtrip_and_tamper() {
        let mut shim = Shim::new(ShimConfig::default(), true, b"platform");
        let blob = shim.pf_seal(b"block contents");
        assert_eq!(shim.pf_open(&blob).unwrap(), b"block contents");
        let mut bad = blob.clone();
        bad.ciphertext[0] ^= 1;
        assert!(shim.pf_open(&bad).is_err());
    }

    #[test]
    fn pf_nonces_unique() {
        let mut shim = Shim::new(ShimConfig::default(), true, b"platform");
        let a = shim.pf_seal(b"same");
        let b = shim.pf_seal(b"same");
        assert_ne!(a.nonce, b.nonce);
        assert_ne!(a.ciphertext, b.ciphertext);
    }

    #[test]
    fn outside_enclave_rejected() {
        let mut m = SgxMachine::new(SgxConfig::with_tiny_epc(64, 4));
        let t = m.add_thread();
        let mut shim = Shim::new(ShimConfig::default(), false, b"p");
        assert!(shim.syscall_light(&mut m, t).is_err());
        assert!(shim.file_transfer(&mut m, t, 10, false).is_err());
    }
}
