//! Offline drop-in for the subset of `criterion` this workspace uses.
//!
//! The build environment has no access to crates.io, so the workspace
//! vendors a miniature wall-clock harness with criterion's surface
//! syntax: [`Criterion::bench_function`], `Bencher::iter`, and the
//! [`criterion_group!`] / [`criterion_main!`] macros. It measures mean
//! nanoseconds per iteration over a warm-up plus measurement window and
//! prints one line per benchmark — no statistics, plots, or baselines.

use std::time::{Duration, Instant};

/// The benchmark driver.
#[derive(Debug, Clone)]
pub struct Criterion {
    sample_size: usize,
    measurement_time: Duration,
    warm_up_time: Duration,
}

impl Default for Criterion {
    fn default() -> Self {
        Criterion {
            sample_size: 100,
            measurement_time: Duration::from_secs(5),
            warm_up_time: Duration::from_secs(3),
        }
    }
}

impl Criterion {
    /// Sets the number of samples (kept for API compatibility; this
    /// harness only uses it to bound the measurement loop).
    #[must_use]
    pub fn sample_size(mut self, n: usize) -> Self {
        self.sample_size = n;
        self
    }

    /// Sets the measurement window.
    #[must_use]
    pub fn measurement_time(mut self, d: Duration) -> Self {
        self.measurement_time = d;
        self
    }

    /// Sets the warm-up window.
    #[must_use]
    pub fn warm_up_time(mut self, d: Duration) -> Self {
        self.warm_up_time = d;
        self
    }

    /// Runs one benchmark and prints its mean time per iteration.
    pub fn bench_function<F>(&mut self, name: &str, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let mut b = Bencher {
            iters: 0,
            elapsed: Duration::ZERO,
        };
        // Warm-up: run without recording.
        let warm_until = Instant::now() + self.warm_up_time;
        while Instant::now() < warm_until {
            f(&mut b);
        }
        b.iters = 0;
        b.elapsed = Duration::ZERO;
        let measure_until = Instant::now() + self.measurement_time;
        let mut samples = 0;
        while Instant::now() < measure_until && samples < self.sample_size.max(1) * 1000 {
            f(&mut b);
            samples += 1;
        }
        let per_iter = if b.iters == 0 {
            0.0
        } else {
            b.elapsed.as_nanos() as f64 / b.iters as f64
        };
        println!("{name:<32} {per_iter:>12.1} ns/iter ({} iters)", b.iters);
        self
    }
}

/// Timing context passed to the closure of
/// [`Criterion::bench_function`].
#[derive(Debug)]
pub struct Bencher {
    iters: u64,
    elapsed: Duration,
}

impl Bencher {
    /// Times one invocation of `routine`, accumulating into the mean.
    pub fn iter<O, R>(&mut self, mut routine: R)
    where
        R: FnMut() -> O,
    {
        let start = Instant::now();
        let out = routine();
        self.elapsed += start.elapsed();
        self.iters += 1;
        drop(out);
    }
}

/// Declares a group of benchmark functions, optionally with a custom
/// [`Criterion`] configuration.
#[macro_export]
macro_rules! criterion_group {
    (name = $name:ident; config = $cfg:expr; targets = $($target:path),+ $(,)?) => {
        fn $name() {
            let mut criterion: $crate::Criterion = $cfg;
            $($target(&mut criterion);)+
        }
    };
    ($name:ident, $($target:path),+ $(,)?) => {
        $crate::criterion_group!(
            name = $name;
            config = $crate::Criterion::default();
            targets = $($target),+
        );
    };
}

/// Declares the `main` running one or more groups.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $($group();)+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bench_function_runs_and_counts() {
        let mut c = Criterion::default()
            .sample_size(5)
            .warm_up_time(Duration::from_millis(1))
            .measurement_time(Duration::from_millis(5));
        let mut runs = 0u64;
        c.bench_function("smoke", |b| {
            b.iter(|| {
                runs += 1;
                runs
            })
        });
        assert!(runs > 0);
    }
}
