//! Offline drop-in for the subset of `rand` 0.8 this workspace uses.
//!
//! The build environment has no access to crates.io, so the workspace
//! vendors the few entry points it calls: [`rngs::StdRng`],
//! [`SeedableRng::seed_from_u64`], [`Rng::gen`] and [`Rng::gen_range`].
//! The generator is SplitMix64 — statistically solid for benchmark key
//! distributions, deterministic per seed, and dependency-free. It is NOT
//! the real `rand` crate and makes no cryptographic claims.

use std::ops::Range;

/// Low-level source of random 64-bit words.
pub trait RngCore {
    /// Next 64 random bits.
    fn next_u64(&mut self) -> u64;
}

/// Seedable construction, mirroring `rand::SeedableRng::seed_from_u64`.
pub trait SeedableRng: Sized {
    /// Builds a generator from a 64-bit seed.
    fn seed_from_u64(seed: u64) -> Self;
}

/// High-level sampling helpers, mirroring `rand::Rng`.
pub trait Rng: RngCore + Sized {
    /// Samples a value of type `T` from its standard distribution
    /// (`f64` is uniform in `[0, 1)`).
    fn gen<T: Standard>(&mut self) -> T {
        T::sample(self)
    }

    /// Samples uniformly from `range` (half-open).
    fn gen_range<T, R: SampleRange<T>>(&mut self, range: R) -> T {
        range.sample_single(self)
    }
}

impl<R: RngCore + Sized> Rng for R {}

/// Types samplable by [`Rng::gen`].
pub trait Standard: Sized {
    /// Draws one value.
    fn sample<R: RngCore>(rng: &mut R) -> Self;
}

impl Standard for u64 {
    fn sample<R: RngCore>(rng: &mut R) -> Self {
        rng.next_u64()
    }
}

impl Standard for f64 {
    fn sample<R: RngCore>(rng: &mut R) -> Self {
        // 53 high bits -> uniform in [0, 1).
        (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

/// Ranges samplable by [`Rng::gen_range`].
pub trait SampleRange<T> {
    /// Draws one value from the range.
    fn sample_single<R: RngCore>(self, rng: &mut R) -> T;
}

macro_rules! impl_int_sample_range {
    ($($t:ty),*) => {$(
        impl SampleRange<$t> for Range<$t> {
            fn sample_single<R: RngCore>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "cannot sample empty range");
                let span = (self.end - self.start) as u64;
                // Modulo bias is < 2^-32 for benchmark-sized spans.
                self.start + (rng.next_u64() % span) as $t
            }
        }
    )*};
}

impl_int_sample_range!(u8, u16, u32, u64, usize);

impl SampleRange<f64> for Range<f64> {
    fn sample_single<R: RngCore>(self, rng: &mut R) -> f64 {
        assert!(self.start < self.end, "cannot sample empty range");
        self.start + f64::sample(rng) * (self.end - self.start)
    }
}

pub mod rngs {
    //! Concrete generators.

    use super::{RngCore, SeedableRng};

    /// SplitMix64 stand-in for `rand::rngs::StdRng`: deterministic per
    /// seed, passes the statistical needs of the YCSB distributions.
    #[derive(Debug, Clone)]
    pub struct StdRng {
        state: u64,
    }

    impl RngCore for StdRng {
        fn next_u64(&mut self) -> u64 {
            self.state = self.state.wrapping_add(0x9e37_79b9_7f4a_7c15);
            let mut z = self.state;
            z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
            z ^ (z >> 31)
        }
    }

    impl SeedableRng for StdRng {
        fn seed_from_u64(seed: u64) -> Self {
            StdRng { state: seed }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::rngs::StdRng;
    use super::{Rng, RngCore, SeedableRng};

    #[test]
    fn deterministic_per_seed() {
        let mut a = StdRng::seed_from_u64(7);
        let mut b = StdRng::seed_from_u64(7);
        for _ in 0..64 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
    }

    #[test]
    fn f64_in_unit_interval() {
        let mut r = StdRng::seed_from_u64(1);
        for _ in 0..10_000 {
            let x: f64 = r.gen();
            assert!((0.0..1.0).contains(&x));
        }
    }

    #[test]
    fn ranges_respected() {
        let mut r = StdRng::seed_from_u64(3);
        for _ in 0..10_000 {
            let k = r.gen_range(10u64..20);
            assert!((10..20).contains(&k));
        }
    }
}
