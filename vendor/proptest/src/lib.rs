//! Offline drop-in for the subset of `proptest` this workspace uses.
//!
//! The build environment has no access to crates.io, so the workspace
//! vendors a miniature property-testing engine with the same surface
//! syntax: the [`proptest!`] macro (including `#![proptest_config(..)]`),
//! [`Strategy`] over integer ranges / tuples / [`Just`] /
//! [`prop_oneof!`] unions / `prop::collection::vec` / `prop_map`
//! combinators, [`any`], and the `prop_assert*` / [`prop_assume!`]
//! macros.
//!
//! Differences from real proptest, deliberately accepted:
//! * no shrinking — a failing case reports its values and panics;
//! * deterministic seeding per test name (cases are reproducible by
//!   construction, so no persistence files);
//! * `Strategy` is a plain sampler (`&self -> Value`), not a value tree.

use std::marker::PhantomData;
use std::ops::Range;

pub mod test_runner {
    //! Runtime pieces used by the expanded [`crate::proptest!`] macro.

    /// Why a single generated case did not pass.
    #[derive(Debug)]
    pub enum TestCaseError {
        /// `prop_assume!` rejected the inputs; the case is retried with
        /// fresh ones and does not count toward the case budget.
        Reject,
        /// A `prop_assert*` failed with this message.
        Fail(String),
    }

    /// Deterministic SplitMix64 stream seeded from the test name, so
    /// every test function explores its own reproducible input sequence.
    #[derive(Debug, Clone)]
    pub struct TestRng {
        state: u64,
    }

    impl TestRng {
        /// Builds the RNG for the named test.
        pub fn deterministic(test_name: &str) -> Self {
            // FNV-1a over the name gives well-spread per-test seeds.
            let mut h: u64 = 0xcbf2_9ce4_8422_2325;
            for b in test_name.bytes() {
                h ^= u64::from(b);
                h = h.wrapping_mul(0x0000_0100_0000_01b3);
            }
            TestRng { state: h }
        }

        /// Next 64 random bits.
        pub fn next_u64(&mut self) -> u64 {
            self.state = self.state.wrapping_add(0x9e37_79b9_7f4a_7c15);
            let mut z = self.state;
            z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
            z ^ (z >> 31)
        }
    }
}

use test_runner::TestRng;

/// Per-block configuration, settable via `#![proptest_config(..)]`.
#[derive(Debug, Clone)]
pub struct ProptestConfig {
    /// Number of accepted cases each test runs.
    pub cases: u32,
}

impl ProptestConfig {
    /// A configuration running `cases` cases per test.
    pub fn with_cases(cases: u32) -> Self {
        ProptestConfig { cases }
    }
}

impl Default for ProptestConfig {
    fn default() -> Self {
        // Real proptest's default; our generators are cheap enough.
        ProptestConfig { cases: 256 }
    }
}

/// A source of arbitrary values: the sampler at the heart of every
/// `pat in strategy` binding.
pub trait Strategy {
    /// The type of value produced.
    type Value;

    /// Draws one value.
    fn sample(&self, rng: &mut TestRng) -> Self::Value;

    /// Transforms sampled values with `f` (real proptest's `prop_map`).
    fn prop_map<T, F: Fn(Self::Value) -> T>(self, f: F) -> Map<Self, F>
    where
        Self: Sized,
    {
        Map {
            source: self,
            map: f,
        }
    }
}

/// The strategy returned by [`Strategy::prop_map`].
#[derive(Debug, Clone)]
pub struct Map<S, F> {
    source: S,
    map: F,
}

impl<S: Strategy, T, F: Fn(S::Value) -> T> Strategy for Map<S, F> {
    type Value = T;

    fn sample(&self, rng: &mut TestRng) -> T {
        (self.map)(self.source.sample(rng))
    }
}

macro_rules! impl_uint_range_strategy {
    ($($t:ty),*) => {$(
        impl Strategy for Range<$t> {
            type Value = $t;

            fn sample(&self, rng: &mut TestRng) -> $t {
                assert!(self.start < self.end, "cannot sample empty range");
                let span = (self.end - self.start) as u64;
                self.start + (rng.next_u64() % span) as $t
            }
        }
    )*};
}

impl_uint_range_strategy!(u8, u16, u32, u64, usize);

macro_rules! impl_int_range_strategy {
    ($($t:ty),*) => {$(
        impl Strategy for Range<$t> {
            type Value = $t;

            fn sample(&self, rng: &mut TestRng) -> $t {
                assert!(self.start < self.end, "cannot sample empty range");
                let span = (self.end as i128 - self.start as i128) as u128;
                let off = (u128::from(rng.next_u64()) % span) as i128;
                (self.start as i128 + off) as $t
            }
        }
    )*};
}

impl_int_range_strategy!(i8, i16, i32, i64, isize);

macro_rules! impl_tuple_strategy {
    ($($S:ident . $idx:tt),+) => {
        impl<$($S: Strategy),+> Strategy for ($($S,)+) {
            type Value = ($($S::Value,)+);

            fn sample(&self, rng: &mut TestRng) -> Self::Value {
                ($(self.$idx.sample(rng),)+)
            }
        }
    };
}

impl_tuple_strategy!(A.0);
impl_tuple_strategy!(A.0, B.1);
impl_tuple_strategy!(A.0, B.1, C.2);
impl_tuple_strategy!(A.0, B.1, C.2, D.3);
impl_tuple_strategy!(A.0, B.1, C.2, D.3, E.4);
impl_tuple_strategy!(A.0, B.1, C.2, D.3, E.4, F.5);

/// A strategy producing one fixed value.
#[derive(Debug, Clone)]
pub struct Just<T: Clone>(pub T);

impl<T: Clone> Strategy for Just<T> {
    type Value = T;

    fn sample(&self, _rng: &mut TestRng) -> T {
        self.0.clone()
    }
}

/// Uniform choice among boxed alternatives; built by [`prop_oneof!`].
pub struct Union<T> {
    options: Vec<Box<dyn Strategy<Value = T>>>,
}

impl<T> Union<T> {
    /// Wraps the alternatives.
    ///
    /// # Panics
    ///
    /// Panics when `options` is empty.
    pub fn new(options: Vec<Box<dyn Strategy<Value = T>>>) -> Self {
        assert!(!options.is_empty(), "prop_oneof! needs at least one option");
        Union { options }
    }
}

impl<T> Strategy for Union<T> {
    type Value = T;

    fn sample(&self, rng: &mut TestRng) -> T {
        let idx = (rng.next_u64() % self.options.len() as u64) as usize;
        self.options[idx].sample(rng)
    }
}

/// Types with a canonical whole-domain strategy, used by [`any`].
pub trait Arbitrary: Sized {
    /// Draws one arbitrary value.
    fn arbitrary(rng: &mut TestRng) -> Self;
}

macro_rules! impl_arbitrary_uint {
    ($($t:ty),*) => {$(
        impl Arbitrary for $t {
            fn arbitrary(rng: &mut TestRng) -> Self {
                rng.next_u64() as $t
            }
        }
    )*};
}

impl_arbitrary_uint!(u8, u16, u32, u64, usize);

impl Arbitrary for bool {
    fn arbitrary(rng: &mut TestRng) -> Self {
        rng.next_u64() & 1 == 1
    }
}

impl<const N: usize> Arbitrary for [u8; N] {
    fn arbitrary(rng: &mut TestRng) -> Self {
        let mut out = [0u8; N];
        for b in out.iter_mut() {
            *b = rng.next_u64() as u8;
        }
        out
    }
}

/// The strategy returned by [`any`].
pub struct Any<T>(PhantomData<T>);

impl<T: Arbitrary> Strategy for Any<T> {
    type Value = T;

    fn sample(&self, rng: &mut TestRng) -> T {
        T::arbitrary(rng)
    }
}

/// A strategy over the whole domain of `T`.
pub fn any<T: Arbitrary>() -> Any<T> {
    Any(PhantomData)
}

pub mod collection {
    //! Collection strategies (`prop::collection::vec`).

    use super::{Strategy, TestRng};
    use std::ops::Range;

    /// Inclusive-start, exclusive-end length band for [`vec`]; built
    /// from a `usize` (exact length) or a `Range<usize>`.
    #[derive(Debug, Clone, Copy)]
    pub struct SizeRange {
        start: usize,
        end: usize,
    }

    impl From<usize> for SizeRange {
        fn from(n: usize) -> Self {
            SizeRange {
                start: n,
                end: n + 1,
            }
        }
    }

    impl From<Range<usize>> for SizeRange {
        fn from(r: Range<usize>) -> Self {
            assert!(r.start < r.end, "empty vec length range");
            SizeRange {
                start: r.start,
                end: r.end,
            }
        }
    }

    /// Strategy for `Vec<S::Value>` with a length drawn from `size`.
    pub struct VecStrategy<S> {
        elem: S,
        size: SizeRange,
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;

        fn sample(&self, rng: &mut TestRng) -> Self::Value {
            let span = (self.size.end - self.size.start) as u64;
            let len = self.size.start + (rng.next_u64() % span) as usize;
            (0..len).map(|_| self.elem.sample(rng)).collect()
        }
    }

    /// `prop::collection::vec(elem, len)`: vectors of `elem` samples.
    pub fn vec<S: Strategy>(elem: S, size: impl Into<SizeRange>) -> VecStrategy<S> {
        VecStrategy {
            elem,
            size: size.into(),
        }
    }
}

pub mod prop {
    //! The `prop::` path alias used by test code.

    pub use crate::collection;
}

pub mod prelude {
    //! Everything a property-test file imports.

    pub use crate::test_runner::TestCaseError;
    pub use crate::{any, prop, Arbitrary, Just, ProptestConfig, Strategy, Union};
    pub use crate::{
        prop_assert, prop_assert_eq, prop_assert_ne, prop_assume, prop_oneof, proptest,
    };
}

/// Declares property tests; supports an optional leading
/// `#![proptest_config(expr)]`.
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::__proptest_fns!(@cfg ($cfg) $($rest)*);
    };
    ($($rest:tt)*) => {
        $crate::__proptest_fns!(@cfg ($crate::ProptestConfig::default()) $($rest)*);
    };
}

#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_fns {
    (@cfg ($cfg:expr)) => {};
    (@cfg ($cfg:expr)
        $(#[$meta:meta])*
        fn $name:ident($($pat:pat in $strat:expr),+ $(,)?) $body:block
        $($rest:tt)*
    ) => {
        $(#[$meta])*
        fn $name() {
            let __config: $crate::ProptestConfig = $cfg;
            let mut __rng = $crate::test_runner::TestRng::deterministic(concat!(module_path!(), "::", stringify!($name)));
            let mut __accepted: u32 = 0;
            let mut __rejected: u32 = 0;
            while __accepted < __config.cases {
                let __outcome: ::core::result::Result<(), $crate::test_runner::TestCaseError> = {
                    let ($($pat,)+) = ($($crate::Strategy::sample(&($strat), &mut __rng),)+);
                    let mut __case = || -> ::core::result::Result<(), $crate::test_runner::TestCaseError> {
                        $body
                        ::core::result::Result::Ok(())
                    };
                    __case()
                };
                match __outcome {
                    ::core::result::Result::Ok(()) => __accepted += 1,
                    ::core::result::Result::Err($crate::test_runner::TestCaseError::Reject) => {
                        __rejected += 1;
                        assert!(
                            __rejected < 1 << 16,
                            "prop_assume! rejected {} inputs in a row",
                            __rejected
                        );
                    }
                    ::core::result::Result::Err($crate::test_runner::TestCaseError::Fail(__msg)) => {
                        panic!("property `{}` failed: {}", stringify!($name), __msg);
                    }
                }
            }
        }
        $crate::__proptest_fns!(@cfg ($cfg) $($rest)*);
    };
}

/// Asserts inside a property, failing the case (not the process) first.
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr $(,)?) => {
        $crate::prop_assert!($cond, concat!("assertion failed: ", stringify!($cond)));
    };
    ($cond:expr, $($fmt:tt)+) => {
        if !$cond {
            return ::core::result::Result::Err($crate::test_runner::TestCaseError::Fail(
                format!($($fmt)+),
            ));
        }
    };
}

/// `assert_eq!` for properties.
#[macro_export]
macro_rules! prop_assert_eq {
    ($left:expr, $right:expr $(,)?) => {{
        let (__l, __r) = (&$left, &$right);
        $crate::prop_assert!(
            *__l == *__r,
            "assertion failed: `{:?}` != `{:?}` ({} != {})",
            __l,
            __r,
            stringify!($left),
            stringify!($right)
        );
    }};
}

/// `assert_ne!` for properties.
#[macro_export]
macro_rules! prop_assert_ne {
    ($left:expr, $right:expr $(,)?) => {{
        let (__l, __r) = (&$left, &$right);
        $crate::prop_assert!(
            *__l != *__r,
            "assertion failed: `{:?}` == `{:?}` ({} == {})",
            __l,
            __r,
            stringify!($left),
            stringify!($right)
        );
    }};
}

/// Uniform choice among alternative strategies with a common value type.
#[macro_export]
macro_rules! prop_oneof {
    ($($strat:expr),+ $(,)?) => {{
        let __options: ::std::vec::Vec<::std::boxed::Box<dyn $crate::Strategy<Value = _>>> =
            vec![$(::std::boxed::Box::new($strat)),+];
        $crate::Union::new(__options)
    }};
}

/// Skips the current case when its inputs don't satisfy a precondition.
#[macro_export]
macro_rules! prop_assume {
    ($cond:expr $(,)?) => {
        if !$cond {
            return ::core::result::Result::Err($crate::test_runner::TestCaseError::Reject);
        }
    };
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;

    proptest! {
        #[test]
        fn ranges_in_bounds(x in 3u64..17, y in 0usize..4) {
            prop_assert!((3..17).contains(&x));
            prop_assert!(y < 4);
        }

        #[test]
        fn tuples_and_vecs(v in prop::collection::vec((0u64..10, any::<u8>()), 1..20)) {
            prop_assert!(!v.is_empty() && v.len() < 20);
            for &(a, _) in &v {
                prop_assert!(a < 10);
            }
        }

        #[test]
        fn oneof_and_just(pick in prop_oneof![Just(1u8), Just(2u8)], mut n in 0u32..5) {
            n += 1;
            prop_assert!(pick == 1 || pick == 2);
            prop_assert_ne!(n, 0);
        }

        #[test]
        fn assume_filters(a in any::<u64>(), b in any::<u64>()) {
            prop_assume!(a != b);
            prop_assert_ne!(a, b);
        }
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(7))]

        #[test]
        fn config_applies(x in 0u64..1000) {
            prop_assert!(x < 1000);
        }
    }

    #[test]
    fn exact_vec_len() {
        let s = crate::collection::vec(0u64..5, 22);
        let mut rng = crate::test_runner::TestRng::deterministic("exact_vec_len");
        let v = s.sample(&mut rng);
        assert_eq!(v.len(), 22);
    }

    proptest! {
        // No #[test] attribute: expanded as a plain fn so the harness
        // doesn't run it directly; the should_panic test below drives it.
        fn always_fails(x in 0u64..10) {
            prop_assert!(x > 100, "x was {x}");
        }
    }

    #[test]
    #[should_panic(expected = "property `always_fails` failed")]
    fn failing_property_panics() {
        always_fails();
    }
}
