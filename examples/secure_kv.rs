//! Secure key-value serving: Memcached + YCSB under a library OS, the
//! "protecting key-value pairs" scenario that motivates the suite (§4).
//!
//! ```sh
//! cargo run --release --example secure_kv
//! ```

use sgxgauge::core::{EnvConfig, ExecMode, InputSetting, Runner, RunnerConfig};
use sgxgauge::workloads::Memcached;

fn main() {
    let wl = Memcached::scaled(16);
    let runner = Runner::new(RunnerConfig {
        env: EnvConfig::paper(ExecMode::Vanilla, 0),
        repetitions: 1,
    });

    println!(
        "Memcached + YCSB (zipfian, 50/50 read/update), {} records, {} ops",
        wl.records(InputSetting::Medium),
        wl.operations()
    );
    println!();
    for mode in [ExecMode::Vanilla, ExecMode::LibOs] {
        let r = runner
            .run_once(&wl, mode, InputSetting::Medium)
            .expect("run");
        let lat = r
            .output
            .metric("mean_latency_cycles")
            .expect("latency metric");
        let hits = r.output.metric("read_hits").expect("hits metric");
        println!("{mode:>8}:");
        println!(
            "  mean request latency : {:>10.0} cycles ({:.1} us at 3.8 GHz)",
            lat,
            lat / 3800.0
        );
        println!("  read hits            : {hits}");
        println!("  OCALLs (shim)        : {}", r.sgx.ocalls);
        println!("  EPC faults           : {}", r.sgx.epc_faults);
        println!("  dTLB misses          : {}", r.counters.dtlb_misses);
        if let Some(startup) = r.libos_startup {
            println!(
                "  LibOS startup        : {} ECALLs, {} OCALLs, {} evictions (excluded from latency)",
                startup.ecalls, startup.ocalls, startup.epc_evictions
            );
        }
        println!();
    }
    println!("The LibOS run pays shielded-syscall OCALLs on every request — the paper's");
    println!("Data/ECALL-intensive classification for Memcached (Table 2).");
}
