//! SGX2 preview: what the paper's start-up observations look like on a
//! platform with dynamic enclave memory (EDMM).
//!
//! ```sh
//! cargo run --release --example sgx2_preview
//! ```

use sgxgauge::libos::{LibosProcess, Manifest};
use sgxgauge::mem::{AccessKind, PAGE_SIZE};
use sgxgauge::sgx::{SgxConfig, SgxMachine};

fn main() {
    println!("Launching a Graphene-style LibOS process (1 GB enclave) on both platforms:\n");
    for (name, edmm) in [("SGX1 (paper's platform)", false), ("SGX2 with EDMM", true)] {
        let cfg = SgxConfig {
            sgx2_edmm: edmm,
            ..Default::default()
        };
        let mut m = SgxMachine::new(cfg);
        let t = m.add_thread();
        let manifest = Manifest::builder("app").enclave_size(1 << 30).build();
        let p = LibosProcess::launch(&mut m, t, &manifest).expect("launch");
        let s = p.startup();

        // Steady state: stream a 32 MB heap twice.
        p.enter(&mut m, t).expect("enter");
        let heap = p.alloc(&mut m, 32 << 20).expect("heap");
        m.reset_measurement();
        for _ in 0..2 {
            for pg in 0..(32 << 20) / PAGE_SIZE {
                m.access(t, heap + pg * PAGE_SIZE, 8, AccessKind::Read);
            }
        }
        println!("{name}:");
        println!("  start-up EPC evictions : {:>9}", s.epc_evictions);
        println!("  start-up cycles        : {:>9} M", s.cycles / 1_000_000);
        println!(
            "  steady-state cycles    : {:>9} M",
            m.mem().cycles_of(t) / 1_000_000
        );
        println!();
    }
    println!("EDMM removes the whole-enclave measurement pass (Appendix D's ~1M");
    println!("evictions for 4 GB enclaves) without changing post-start-up behaviour —");
    println!("the paper's measurements would survive the platform upgrade.");
}
