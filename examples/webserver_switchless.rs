//! Secure web serving with and without switchless OCALLs: Lighttpd under
//! `ab`-style load (paper §5.6 / Fig 6d).
//!
//! ```sh
//! cargo run --release --example webserver_switchless
//! ```

use sgxgauge::core::{EnvConfig, ExecMode, InputSetting, Runner, RunnerConfig};
use sgxgauge::workloads::Lighttpd;

fn main() {
    let wl = Lighttpd::scaled(32);

    let configs = [
        (
            "Vanilla (no SGX)",
            EnvConfig::paper(ExecMode::Vanilla, 0),
            ExecMode::Vanilla,
        ),
        (
            "LibOS, classic OCALLs",
            EnvConfig::paper(ExecMode::LibOs, 0),
            ExecMode::LibOs,
        ),
        (
            "LibOS, switchless (8 proxies)",
            EnvConfig::paper(ExecMode::LibOs, 0).with_switchless(8),
            ExecMode::LibOs,
        ),
    ];

    println!(
        "Lighttpd serving a 20 KB page to 16 concurrent clients, {} requests:",
        wl.requests(InputSetting::Low)
    );
    println!();
    let mut base_latency = None;
    for (name, env, mode) in configs {
        let runner = Runner::new(RunnerConfig {
            env,
            repetitions: 1,
        });
        let r = runner.run_once(&wl, mode, InputSetting::Low).expect("run");
        let lat = r.output.metric("mean_latency_cycles").expect("latency");
        let p95 = r.output.metric("p95_latency_cycles").expect("p95");
        let base = *base_latency.get_or_insert(lat);
        println!("{name}:");
        println!(
            "  mean latency : {:>10.0} cycles ({:.2}x vanilla)",
            lat,
            lat / base
        );
        println!("  p95 latency  : {:>10.0} cycles", p95);
        println!("  dTLB misses  : {:>10}", r.counters.dtlb_misses);
        println!("  TLB flushes  : {:>10}", r.counters.tlb_flushes);
        println!(
            "  OCALLs       : {:>10} classic, {} switchless",
            r.sgx.ocalls, r.sgx.switchless_ocalls
        );
        println!();
    }
    println!("Switchless OCALLs skip the EEXIT/EENTER round trip and its TLB flushes,");
    println!("recovering most of the latency the shim costs — the paper measures a 30%");
    println!("latency improvement and 60% fewer dTLB misses (Fig 6d).");
}
