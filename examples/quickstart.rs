//! Quickstart: run one SGXGauge workload in all three execution modes
//! and compare the counters.
//!
//! ```sh
//! cargo run --release --example quickstart
//! ```

use sgxgauge::core::report::ReportTable;
use sgxgauge::core::{EnvConfig, ExecMode, InputSetting, Runner, RunnerConfig};
use sgxgauge::workloads::BTree;

fn main() {
    // A 1/8-scale B-Tree keeps this example under a few seconds while
    // still crossing the (paper-faithful, 92 MB) EPC at the High setting
    // if you pass `--full`.
    let full = std::env::args().any(|a| a == "--full");
    let (workload, setting) = if full {
        (BTree::new(), InputSetting::High)
    } else {
        (BTree::scaled(8), InputSetting::Low)
    };

    let runner = Runner::new(RunnerConfig {
        env: EnvConfig::paper(ExecMode::Vanilla, 0),
        repetitions: 1,
    });

    let mut table = ReportTable::new(
        &format!("BTree ({setting}) across execution modes"),
        &[
            "mode",
            "runtime_Mcycles",
            "dtlb_misses",
            "walk_Mcycles",
            "llc_misses",
            "epc_faults",
            "ecalls",
        ],
    );
    let mut vanilla_cycles = 0;
    for mode in ExecMode::ALL {
        let report = runner.run_once(&workload, mode, setting).expect("run");
        if mode == ExecMode::Vanilla {
            vanilla_cycles = report.runtime_cycles;
        }
        table.push_row(vec![
            mode.to_string(),
            (report.runtime_cycles / 1_000_000).to_string(),
            report.counters.dtlb_misses.to_string(),
            (report.counters.walk_cycles / 1_000_000).to_string(),
            report.counters.llc_misses.to_string(),
            report.sgx.epc_faults.to_string(),
            report.sgx.ecalls.to_string(),
        ]);
        println!(
            "{mode:>8}: {:>6} Mcycles ({:.2}x Vanilla), checksum {:#x}",
            report.runtime_cycles / 1_000_000,
            report.runtime_cycles as f64 / vanilla_cycles as f64,
            report.output.checksum,
        );
    }
    println!();
    println!("{table}");
    println!("Tip: rerun with --full for the paper-scale High setting (2 M elements > 92 MB EPC).");
}
