//! EPC stress: watch every paging counter jump as a workload's footprint
//! sweeps across the EPC boundary (the paper's Figure 2 phenomenon, on a
//! finer grid).
//!
//! ```sh
//! cargo run --release --example epc_stress
//! ```

use mem_sim::{AccessKind, PAGE_SIZE};
use sgxgauge::sgx::{SgxConfig, SgxMachine};

fn main() {
    // A small EPC keeps the sweep fast; ratios are what matter.
    let epc_pages: u64 = 4_096; // 16 MB
    println!(
        "EPC: {} pages ({} MB). Sweeping working sets from 25% to 250% of it.",
        epc_pages,
        (epc_pages * PAGE_SIZE) >> 20
    );
    println!();
    println!(
        "{:>10} {:>9} {:>12} {:>12} {:>12} {:>12}",
        "ws/epc", "ws_pages", "cycles/acc", "dtlb_misses", "walk_cycles", "evictions"
    );

    for pct in [25u64, 50, 75, 90, 100, 110, 125, 150, 200, 250] {
        let ws_pages = epc_pages * pct / 100;
        let mut m = SgxMachine::new(SgxConfig::with_tiny_epc(epc_pages as usize, 16));
        let t = m.add_thread();
        let e = m
            .create_enclave(ws_pages * PAGE_SIZE + (8 << 20), 1 << 20)
            .expect("enclave");
        m.ecall_enter(t, e).expect("enter");
        let heap = m.alloc_enclave_heap(e, ws_pages * PAGE_SIZE).expect("heap");

        // Warm-up sweep (populates pages), then measured random walk.
        for p in 0..ws_pages {
            m.access(t, heap + p * PAGE_SIZE, 8, AccessKind::Write);
        }
        m.reset_measurement();
        let mut x = 0x243f6a8885a308d3u64;
        let accesses = 200_000u64;
        for _ in 0..accesses {
            x ^= x << 13;
            x ^= x >> 7;
            x ^= x << 17;
            m.access(t, heap + (x % ws_pages) * PAGE_SIZE, 8, AccessKind::Read);
        }
        let c = m.mem().counters();
        let s = m.sgx_counters();
        println!(
            "{:>9}% {:>9} {:>12.1} {:>12} {:>12} {:>12}",
            pct,
            ws_pages,
            m.mem().cycles_of(t) as f64 / accesses as f64,
            c.dtlb_misses,
            c.walk_cycles,
            s.epc_evictions,
        );
    }
    println!();
    println!("Note the cliff between 100% and 110%: that is the paper's Figure 2.");
}
