//! SGXGauge — a comprehensive benchmark suite for Intel SGX, reproduced on
//! a simulated SGX substrate.
//!
//! This facade crate re-exports the whole workspace so examples and
//! integration tests can use one import root. See the README for the
//! architecture overview and `DESIGN.md` for the per-experiment index.
//!
//! # Example
//!
//! Run one workload in Native mode on the paper's platform:
//!
//! ```
//! use sgxgauge::core::{EnvConfig, ExecMode, InputSetting, Runner, RunnerConfig};
//! use sgxgauge::workloads::HashJoin;
//!
//! # fn main() -> Result<(), sgxgauge::core::WorkloadError> {
//! let runner = Runner::new(RunnerConfig {
//!     env: EnvConfig::quick_test(ExecMode::Vanilla), // small platform for doctests
//!     repetitions: 1,
//! });
//! let report = runner.run_once(&HashJoin::scaled(1024), ExecMode::Native, InputSetting::Low)?;
//! assert!(report.sgx.ecalls > 0);
//! # Ok(())
//! # }
//! ```

#![forbid(unsafe_code)]
#![deny(missing_docs)]

pub use campaign;
pub use faults;
pub use gauge_stats as stats;
pub use libos_sim as libos;
pub use mem_sim as mem;
pub use relay;
pub use sgx_crypto as crypto;
pub use sgx_sim as sgx;
pub use sgxgauge_core as core;
pub use sgxgauge_workloads as workloads;
pub use trace;
pub use ycsb_gen as ycsb;
