//! `sgxgauge` — command-line driver for the benchmark suite.
//!
//! ```text
//! sgxgauge list
//! sgxgauge run --workload BTree --mode native --setting high [--scale 8]
//! sgxgauge compare --workload HashJoin --setting medium [--scale 8]
//! sgxgauge suite [--setting low] [--scale 16] [--modes vanilla,libos]
//! ```

use sgxgauge::campaign::{run_campaign, run_soak, CampaignConfig};
use sgxgauge::core::emit::{Emitter, Format, TraceJsonl};
use sgxgauge::core::io as artifact_io;
use sgxgauge::core::report::{
    cycle_breakdown, humanize, quarantine_table, sweep_table, RatioRow, ReportTable,
};
use sgxgauge::core::{
    ArtifactIo, CellKey, ChaosFs, EnvConfig, ExecMode, InputSetting, PartyDim, RealFs, RunReport,
    Runner, RunnerConfig, SuiteRunner, TenantDim, TraceConfig, Workload,
};
use sgxgauge::faults::{FaultPlan, IoFaultPlan, NetFaultPlan};
use sgxgauge::mem::PAGE_SIZE;
use sgxgauge::relay::{run_mpc, MpcConfig, MpcError, MpcReport};
use sgxgauge::sgx::{Host, SgxConfig, TenantId, TenantOp, TenantReport, TenantSpec};
use sgxgauge::stats::BarChart;
use sgxgauge::workloads::{suite, suite_scaled};
use std::collections::HashMap;
use std::path::PathBuf;
use std::process::ExitCode;

fn usage() -> ExitCode {
    eprintln!(
        "usage:
  sgxgauge list
  sgxgauge run     --workload <name> --mode <vanilla|native|libos> --setting <low|medium|high>
                   [--scale <divisor>] [--switchless <workers>] [--pf]
                   [--faults <spec>] [--cell-budget <cycles>]
  sgxgauge compare --workload <name> --setting <low|medium|high> [--scale <divisor>]
  sgxgauge suite   [--setting <low|medium|high>] [--scale <divisor>] [--modes <m1,m2,..>]
                   [--reps <n>] [--jobs <n>] [--faults <spec>] [--cell-budget <cycles>]
                   [--retries <n>] [--max-quarantine <n>] [--checkpoint <path>]
                   [--resume <path>] [--report <file.csv>] [--io-faults <spec>]
  sgxgauge trace   <workload> --mode <vanilla|native|libos> --setting <low|medium|high>
                   [--scale <divisor>] [--out <file.jsonl|file.csv>] [--jobs <n>]
                   [--sample <cycles>] [--capacity <records>] [--switchless <workers>]
                   [--pf] [--faults <spec>] [--cell-budget <cycles>] [--io-faults <spec>]
  sgxgauge campaign <config.toml> [--out <dir>] [--soak <kills>]
                   runs a declarative chaos campaign (stages, breakers, retry
                   budgets, degraded mode); --soak adds <kills> seeded
                   kill/resume cycles and verifies byte-identical convergence
  sgxgauge cotenancy [--tenants <n>] [--wave <cycles>] [--epc-pages <n>] [--ops <n>]
                   [--jobs <n>] [--out <file.csv>] [--timeline <file.jsonl>]
                   sweeps antagonist count 0..n-1 against one all-resident victim
                   on a shared-EPC co-tenant host, emitting noisy-neighbor curves
                   (victim slowdown, per-tenant fault rates); output is
                   byte-identical across --jobs
  sgxgauge mpc     [--parties <n>] [--threshold <t>] [--rounds <r>] [--net <spec>]
                   [--jobs <n>] [--out <file.csv>] [--timeline <file.jsonl>]
                   sweeps t-of-n threshold signing over relay-connected enclaves,
                   party counts t..=n under the network fault plan, emitting
                   round-latency and quorum-survival curves plus typed
                   supervision events; output is byte-identical across --jobs

network fault spec (comma-separated, e.g. \"drop=50,partykill=2@100000:500000\"):
  seed=<u64>                   PRNG seed (default 1)
  drop=<permille>              per-message loss rate (0..=1000)
  delay=<cycles>@<permille>    extra latency <cycles> with p/1000
  dup=<permille>               per-message duplication rate (0..=1000)
  reorder=<permille>           per-message reordering-jitter rate (0..=1000)
  partition=<a>-<b>@<at>:<dur> cut one link for a cycle window
  partykill=<id>@<at>:<dur>    kill one party for a cycle window

fault spec (comma-separated, e.g. \"seed=7,aex=3@50000,syscall=20\"):
  seed=<u64>                   PRNG seed (default 1)
  aex=<exits>@<period>         AEX storm: <exits> forced exits every <period> cycles
  epc=<frames>@<period>:<dur>  EPC pressure: reserve <frames> for <dur> cycles every <period>
  syscall=<permille>           transient host-syscall failure rate (0..=1000)
  bitflip=<permille>           per-read file bit-flip rate (0..=1000)

host io fault spec (comma-separated, e.g. \"seed=7,eio=20,torn=5,crash_rename=3\"):
  seed=<u64>                   PRNG seed (default 1)
  enospc=<permille>            artifact write fails with ENOSPC (0..=1000)
  eio=<permille>               artifact write fails transiently (0..=1000)
  torn=<permille>              artifact write silently lands a prefix (0..=1000)
  crash_rename=<n>             crash the harness at the n-th artifact rename

--max-quarantine <n>  tolerate at most n quarantined (fatal/panicked) cells,
                      then fail fast; completed cells stay checkpointed
--resume <path>       verifies the checkpoint's CRC32 integrity footer and
                      replays its recovery journal (repairing or quarantining
                      interrupted writes) before adopting completed cells
--report <file.csv>   emit the suite table as CSV sealed with an integrity
                      footer"
    );
    ExitCode::from(2)
}

fn parse_flags(args: &[String]) -> Result<HashMap<String, String>, String> {
    let mut flags = HashMap::new();
    let mut i = 0;
    while i < args.len() {
        let a = &args[i];
        if let Some(name) = a.strip_prefix("--") {
            if name == "pf" {
                flags.insert("pf".to_owned(), "true".to_owned());
                i += 1;
            } else {
                let v = args
                    .get(i + 1)
                    .ok_or_else(|| format!("--{name} needs a value"))?;
                flags.insert(name.to_owned(), v.clone());
                i += 2;
            }
        } else {
            return Err(format!("unexpected argument `{a}`"));
        }
    }
    Ok(flags)
}

fn parse_mode(s: &str) -> Result<ExecMode, String> {
    s.parse()
}

fn parse_setting(s: &str) -> Result<InputSetting, String> {
    s.parse()
}

fn workloads_for(scale: u64) -> Vec<Box<dyn Workload>> {
    if scale <= 1 {
        suite()
    } else {
        suite_scaled(scale)
    }
}

fn find_workload(scale: u64, name: &str) -> Result<Box<dyn Workload>, String> {
    workloads_for(scale)
        .into_iter()
        .find(|w| w.name().eq_ignore_ascii_case(name))
        .ok_or_else(|| {
            let names: Vec<_> = suite().iter().map(|w| w.name()).collect();
            format!("unknown workload `{name}`; available: {}", names.join(", "))
        })
}

fn runner(flags: &HashMap<String, String>) -> Result<Runner, String> {
    let mut env = EnvConfig::paper(ExecMode::Vanilla, 0);
    if let Some(w) = flags.get("switchless") {
        let workers: usize = w
            .parse()
            .map_err(|_| "--switchless needs a number".to_owned())?;
        env = env.with_switchless(workers);
    }
    if flags.contains_key("pf") {
        env = env.with_protected_files();
    }
    let mut runner = Runner::new(RunnerConfig {
        env,
        repetitions: 1,
    });
    if let Some(spec) = flags.get("faults") {
        runner = runner.faults(FaultPlan::parse(spec)?);
    }
    if let Some(b) = flags.get("cell-budget") {
        runner = runner.cell_budget(b.parse().map_err(|_| "bad --cell-budget".to_owned())?);
    }
    Ok(runner)
}

fn print_report(r: &RunReport) {
    println!("workload : {}", r.workload);
    println!("mode     : {}", r.mode);
    println!("setting  : {}", r.setting);
    println!(
        "runtime  : {} cycles ({:.3} s at {:.1} GHz)",
        r.runtime_cycles,
        r.runtime_seconds(),
        r.clock_ghz()
    );
    println!("ops      : {}", r.output.ops);
    println!("checksum : {:#018x}", r.output.checksum);
    println!("-- hardware counters --");
    for (name, v) in r.counters.fields() {
        println!("  {name:<16} {}", humanize(v));
    }
    println!("-- sgx counters --");
    for (name, v) in r.sgx.fields() {
        println!("  {name:<16} {}", humanize(v));
    }
    if let Some(s) = r.libos_startup {
        println!("-- libos startup (excluded from runtime) --");
        println!(
            "  ecalls {} | ocalls {} | aex {} | evictions {} | loadbacks {}",
            s.ecalls,
            s.ocalls,
            s.aex_exits,
            humanize(s.epc_evictions),
            s.epc_loadbacks
        );
    }
    for (name, v) in &r.output.metrics {
        println!("metric   : {name} = {v:.2}");
    }
    println!("-- cycle breakdown (summed over threads) --");
    let mut chart = BarChart::new("cycles by category", 40);
    for (name, v) in cycle_breakdown(r) {
        chart.push(name, v as f64);
    }
    println!("{chart}");
}

fn cmd_list() -> Result<(), String> {
    let mut table = ReportTable::new(
        "SGXGauge workloads (Table 2)",
        &["workload", "property", "modes", "low", "medium", "high"],
    );
    for wl in suite() {
        let modes: Vec<String> = ExecMode::ALL
            .iter()
            .filter(|m| wl.supports(**m))
            .map(|m| m.to_string())
            .collect();
        table.push_row(vec![
            wl.name().to_owned(),
            wl.property().to_owned(),
            modes.join("+"),
            wl.spec(InputSetting::Low).params,
            wl.spec(InputSetting::Medium).params,
            wl.spec(InputSetting::High).params,
        ]);
    }
    println!("{table}");
    Ok(())
}

fn cmd_run(flags: &HashMap<String, String>) -> Result<(), String> {
    let scale: u64 = flags
        .get("scale")
        .map_or(Ok(1), |s| s.parse())
        .map_err(|_| "bad --scale")?;
    let name = flags.get("workload").ok_or("--workload is required")?;
    let mode = parse_mode(flags.get("mode").ok_or("--mode is required")?)?;
    let setting = parse_setting(flags.get("setting").ok_or("--setting is required")?)?;
    let wl = find_workload(scale, name)?;
    let r = runner(flags)?
        .run_once(wl.as_ref(), mode, setting)
        .map_err(|e| e.to_string())?;
    print_report(&r);
    Ok(())
}

fn cmd_compare(flags: &HashMap<String, String>) -> Result<(), String> {
    let scale: u64 = flags
        .get("scale")
        .map_or(Ok(1), |s| s.parse())
        .map_err(|_| "bad --scale")?;
    let name = flags.get("workload").ok_or("--workload is required")?;
    let setting = parse_setting(flags.get("setting").ok_or("--setting is required")?)?;
    let wl = find_workload(scale, name)?;
    let runner = runner(flags)?;
    let vanilla = runner
        .run_once(wl.as_ref(), ExecMode::Vanilla, setting)
        .map_err(|e| e.to_string())?;
    let mut chart = BarChart::new("runtime overhead vs Vanilla (x)", 40);
    let mut table = ReportTable::new(
        &format!("{} ({setting}) across modes, ratios vs Vanilla", wl.name()),
        &[
            "mode",
            "runtime",
            "overhead",
            "dtlb",
            "walk",
            "stall",
            "llc",
            "evictions",
        ],
    );
    for mode in ExecMode::ALL {
        if !wl.supports(mode) {
            continue;
        }
        let r = if mode == ExecMode::Vanilla {
            vanilla.clone()
        } else {
            runner
                .run_once(wl.as_ref(), mode, setting)
                .map_err(|e| e.to_string())?
        };
        let ratio = RatioRow::from_reports(&r, &vanilla);
        chart.push(&mode.to_string(), ratio.overhead);
        table.push_row(vec![
            mode.to_string(),
            humanize(r.runtime_cycles),
            format!("{:.2}x", ratio.overhead),
            format!("{:.2}x", ratio.dtlb_misses),
            format!("{:.2}x", ratio.walk_cycles),
            format!("{:.2}x", ratio.stall_cycles),
            format!("{:.2}x", ratio.llc_misses),
            humanize(r.sgx.epc_evictions),
        ]);
    }
    println!("{table}");
    println!("{chart}");
    Ok(())
}

fn cmd_suite(flags: &HashMap<String, String>) -> Result<(), String> {
    let scale: u64 = flags
        .get("scale")
        .map_or(Ok(1), |s| s.parse())
        .map_err(|_| "bad --scale")?;
    let setting = flags
        .get("setting")
        .map_or(Ok(InputSetting::Low), |s| parse_setting(s))?;
    let reps: usize = flags
        .get("reps")
        .map_or(Ok(1), |s| s.parse())
        .map_err(|_| "bad --reps")?;
    let jobs: usize = flags
        .get("jobs")
        .map_or(Ok(0), |s| s.parse())
        .map_err(|_| "bad --jobs")?;
    let modes: Vec<ExecMode> = match flags.get("modes") {
        None => ExecMode::ALL.to_vec(),
        Some(spec) => spec
            .split(',')
            .map(parse_mode)
            .collect::<Result<Vec<_>, _>>()?,
    };
    let retries: usize = flags
        .get("retries")
        .map_or(Ok(0), |s| s.parse())
        .map_err(|_| "bad --retries")?;
    let runner = runner(flags)?;
    let mut cfg = runner.config().clone();
    cfg.repetitions = reps.max(1);
    let mut suite_runner = SuiteRunner::new(cfg)
        .modes(&modes)
        .settings(&[setting])
        .threads(jobs)
        .retries(retries);
    if let Some(plan) = runner.fault_plan() {
        suite_runner = suite_runner.faults(plan.clone());
    }
    if let Some(budget) = runner.cell_budget_cycles() {
        suite_runner = suite_runner.cell_budget(budget);
    }
    if let Some(max) = flags.get("max-quarantine") {
        let max: usize = max.parse().map_err(|_| "bad --max-quarantine")?;
        suite_runner = suite_runner.max_quarantine(max);
    }
    let io = artifact_backend(flags)?;
    let workloads = workloads_for(scale);
    let refs: Vec<&dyn Workload> = workloads.iter().map(|w| w.as_ref()).collect();
    let checkpoint = flags.get("checkpoint").map(PathBuf::from);
    let resume = flags.get("resume").map(PathBuf::from);
    let sweep = match (&checkpoint, &resume) {
        (Some(c), Some(r)) if c != r => {
            return Err("--checkpoint and --resume must name the same file".to_owned())
        }
        (_, Some(path)) => {
            let recovery = artifact_io::recover(io.as_ref(), path).map_err(|e| e.to_string())?;
            if !recovery.is_clean() {
                for repaired in &recovery.repaired {
                    eprintln!(
                        "[recovery] completed interrupted write: {}",
                        repaired.display()
                    );
                }
                for quarantined in &recovery.quarantined {
                    eprintln!(
                        "[recovery] quarantined torn write: {}",
                        quarantined.display()
                    );
                }
            }
            suite_runner
                .run_with_checkpoint_io(&refs, path, true, io.as_ref())
                .map_err(|e| e.to_string())?
        }
        (Some(path), None) => suite_runner
            .run_with_checkpoint_io(&refs, path, false, io.as_ref())
            .map_err(|e| e.to_string())?,
        (None, None) => suite_runner.try_run(&refs).map_err(|e| e.to_string())?,
    };
    for (cell, err) in sweep.errors() {
        if cell.attempts > 1 {
            eprintln!(
                "{} in {}: {err} (after {} attempts)",
                cell.workload, cell.cell.mode, cell.attempts
            );
        } else {
            eprintln!("{} in {}: {err}", cell.workload, cell.cell.mode);
        }
    }
    let quarantine = quarantine_table(&sweep);
    if !quarantine.rows.is_empty() {
        eprintln!("{quarantine}");
    }
    let mut table = ReportTable::new(
        &format!("Suite at {setting} (scale 1/{scale})"),
        &[
            "workload",
            "mode",
            "runtime",
            "dtlb_misses",
            "epc_evictions",
            "ecalls",
            "ocalls",
        ],
    );
    for cell in &sweep.cells {
        let Ok(r) = &cell.result else { continue };
        table.push_row(vec![
            cell.workload.to_owned(),
            cell.cell.mode.to_string(),
            humanize(r.runtime_cycles),
            humanize(r.counters.dtlb_misses),
            humanize(r.sgx.epc_evictions),
            humanize(r.sgx.ecalls),
            humanize(r.sgx.ocalls + r.sgx.switchless_ocalls),
        ]);
    }
    println!("{table}");
    if reps > 1 {
        println!(
            "{}",
            sweep_table("Suite aggregate (geomean over reps)", &sweep)
        );
    }
    if let Some(out) = flags.get("report") {
        let path = PathBuf::from(out);
        table
            .emit_sealed_with(io.as_ref(), &path)
            .map_err(|e| e.to_string())?;
        println!("[report] {}", path.display());
    }
    Ok(())
}

/// The artifact I/O backend the CLI should publish through: the real
/// filesystem, or a deterministic chaos wrapper when `--io-faults` is given.
fn artifact_backend(flags: &HashMap<String, String>) -> Result<Box<dyn ArtifactIo>, String> {
    match flags.get("io-faults") {
        None => Ok(Box::new(RealFs)),
        Some(spec) => {
            let plan = IoFaultPlan::parse(spec)?;
            if plan.is_empty() {
                Ok(Box::new(RealFs))
            } else {
                Ok(Box::new(ChaosFs::over_real(plan)))
            }
        }
    }
}

fn cmd_trace(name: &str, flags: &HashMap<String, String>) -> Result<(), String> {
    let scale: u64 = flags
        .get("scale")
        .map_or(Ok(1), |s| s.parse())
        .map_err(|_| "bad --scale")?;
    let mode = parse_mode(flags.get("mode").ok_or("--mode is required")?)?;
    let setting = parse_setting(flags.get("setting").ok_or("--setting is required")?)?;
    let jobs: usize = flags
        .get("jobs")
        .map_or(Ok(0), |s| s.parse())
        .map_err(|_| "bad --jobs")?;
    let mut tc = TraceConfig::default();
    if let Some(s) = flags.get("sample") {
        tc.sample_interval_cycles = s.parse().map_err(|_| "bad --sample".to_owned())?;
    }
    if let Some(s) = flags.get("capacity") {
        tc.capacity = s.parse().map_err(|_| "bad --capacity".to_owned())?;
        if tc.capacity == 0 {
            return Err("--capacity must be at least 1".to_owned());
        }
    }
    let wl = find_workload(scale, name)?;
    // Route through the sweep executor: traces come from per-cell private
    // sinks keyed on simulated clocks, so `--jobs` provably cannot change
    // a single byte of the output.
    let base = runner(flags)?;
    let mut cfg = base.config().clone();
    cfg.repetitions = 1;
    let mut suite_runner = SuiteRunner::new(cfg)
        .modes(&[mode])
        .settings(&[setting])
        .threads(jobs)
        .tracing(tc);
    if let Some(plan) = base.fault_plan() {
        suite_runner = suite_runner.faults(plan.clone());
    }
    if let Some(budget) = base.cell_budget_cycles() {
        suite_runner = suite_runner.cell_budget(budget);
    }
    let sweep = suite_runner.run(&[wl.as_ref()]);
    let cell = sweep.cells.first().ok_or("empty sweep")?;
    let r = cell.result.as_ref().map_err(|e| e.to_string())?;
    let sink = r
        .trace
        .as_ref()
        .ok_or("run produced no trace (internal error)")?;

    println!(
        "workload : {} | mode {} | setting {}",
        r.workload, r.mode, r.setting
    );
    println!(
        "runtime  : {} cycles ({:.3} s at {:.1} GHz)",
        r.runtime_cycles,
        r.runtime_seconds(),
        r.clock_ghz()
    );
    println!(
        "trace    : {} records retained of {} emitted ({} dropped), {} timeline points",
        humanize(sink.len() as u64),
        humanize(sink.emitted()),
        humanize(sink.dropped()),
        r.timeline.len()
    );
    let mut table = ReportTable::new(
        "Per-phase cycle attribution",
        &[
            "phase",
            "cycles",
            "app",
            "transition",
            "paging",
            "mee",
            "epc_faults",
        ],
    );
    for p in &r.phases {
        table.push_row(vec![
            p.phase.clone(),
            humanize(p.total_cycles()),
            humanize(p.app_cycles),
            humanize(p.transition_cycles),
            humanize(p.paging_cycles),
            humanize(p.mee_cycles),
            humanize(p.epc_faults),
        ]);
    }
    println!("{table}");
    if let Some(out) = flags.get("out") {
        let path = PathBuf::from(out);
        let io = artifact_backend(flags)?;
        match Format::from_path(&path) {
            Some(Format::Jsonl) => TraceJsonl(sink)
                .emit_with(io.as_ref(), &path)
                .map_err(|e| e.to_string())?,
            Some(Format::Csv) => timeline_table(r)
                .emit_with(io.as_ref(), &path)
                .map_err(|e| e.to_string())?,
            Some(Format::Json) | None => {
                return Err(format!(
                    "--out `{out}`: use a .jsonl (event stream) or .csv (timeline) extension"
                ))
            }
        }
        println!("[out] {}", path.display());
    }
    Ok(())
}

/// The sampled counter timeline of a traced report as a CSV-ready table.
fn timeline_table(r: &RunReport) -> ReportTable {
    let mut headers = vec!["cycles"];
    if let Some(first) = r.timeline.first() {
        headers.extend(first.snap.fields().map(|(name, _)| name));
    }
    let mut table = ReportTable::new(
        &format!("{} {} {} counter timeline", r.workload, r.mode, r.setting),
        &headers,
    );
    for point in &r.timeline {
        let mut row = vec![point.cycles.to_string()];
        row.extend(point.snap.fields().map(|(_, v)| v.to_string()));
        table.push_row(row);
    }
    table
}

/// One completed cell of the co-tenancy sweep: the per-tenant reports
/// plus the cell's rendered JSONL trace (empty when untraced).
struct CotenancyCell {
    key: CellKey,
    reports: Vec<TenantReport>,
    jsonl: String,
}

/// Runs one co-tenancy cell: an all-resident victim plus `antagonists`
/// EPC-thrashing neighbors on one shared host. Pure function of its
/// arguments — the sweep fans cells across threads and aggregates in
/// grid order, so `--jobs` provably cannot change a byte of output.
fn run_cotenancy_cell(
    antagonists: u8,
    wave: u64,
    epc_pages: u64,
    ops: u64,
    traced: bool,
) -> Result<CotenancyCell, String> {
    let key = CellKey {
        workload: 0,
        mode: ExecMode::Native,
        setting: InputSetting::High,
        rep: 0,
        tenant: Some(TenantDim {
            tenants: antagonists + 1,
            antagonists,
        }),
        party: None,
    };
    let thrash_pages = epc_pages * 2;
    let mut b = Host::builder()
        .sgx(SgxConfig::with_tiny_epc(
            usize::try_from(epc_pages).map_err(|_| "bad --epc-pages")?,
            4,
        ))
        .wave_cycles(wave)
        .tenant(TenantSpec {
            name: "victim".to_owned(),
            enclave_bytes: 32 * PAGE_SIZE,
            content_bytes: 0,
            heap_bytes: 8 * PAGE_SIZE,
        });
    for i in 0..antagonists {
        b = b.tenant(TenantSpec {
            name: format!("antagonist{i}"),
            enclave_bytes: (thrash_pages + 16) * PAGE_SIZE,
            content_bytes: 0,
            heap_bytes: thrash_pages * PAGE_SIZE,
        });
    }
    let mut host = b.build().map_err(|e| e.to_string())?;
    if traced {
        host.machine_mut()
            .mem_mut()
            .set_trace_sink(sgxgauge::trace::TraceSink::with_config(1 << 14, 0));
    }
    let victim_ops: Vec<TenantOp> = (0..ops)
        .flat_map(|i| {
            [
                TenantOp::Access {
                    offset: (i % 8) * PAGE_SIZE,
                    len: 64,
                    write: false,
                },
                TenantOp::Compute { cycles: 500 },
            ]
        })
        .collect();
    host.push_ops(TenantId(0), victim_ops);
    for t in 0..antagonists {
        // Offset each antagonist's stream so they sweep different parts
        // of the shared pool in the same wave.
        let phase = u64::from(t) * 17;
        let antagonist_ops: Vec<TenantOp> = (0..ops)
            .map(|i| TenantOp::Access {
                offset: ((i + phase) % thrash_pages) * PAGE_SIZE,
                len: 64,
                write: true,
            })
            .collect();
        host.push_ops(TenantId(usize::from(t) + 1), antagonist_ops);
    }
    host.run().map_err(|e| e.to_string())?;
    host.machine()
        .check_invariants()
        .map_err(|e| format!("cell {key}: {e}"))?;
    let jsonl = host
        .machine_mut()
        .mem_mut()
        .take_trace_sink()
        .map(|sink| sink.render_jsonl())
        .unwrap_or_default();
    Ok(CotenancyCell {
        key,
        reports: host.tenant_reports(),
        jsonl,
    })
}

fn cmd_cotenancy(flags: &HashMap<String, String>) -> Result<(), String> {
    let tenants: u8 = flags
        .get("tenants")
        .map_or(Ok(4), |s| s.parse())
        .map_err(|_| "bad --tenants (1..=255)")?;
    if tenants == 0 {
        return Err("--tenants must be at least 1 (the victim)".to_owned());
    }
    let wave: u64 = flags
        .get("wave")
        .map_or(Ok(5_000), |s| s.parse())
        .map_err(|_| "bad --wave")?;
    let epc_pages: u64 = flags
        .get("epc-pages")
        .map_or(Ok(64), |s| s.parse())
        .map_err(|_| "bad --epc-pages")?;
    if epc_pages < 16 {
        return Err("--epc-pages must be at least 16".to_owned());
    }
    let ops: u64 = flags
        .get("ops")
        .map_or(Ok(1_000), |s| s.parse())
        .map_err(|_| "bad --ops")?;
    let jobs: usize = flags
        .get("jobs")
        .map_or(Ok(0), |s| s.parse())
        .map_err(|_| "bad --jobs")?;
    let jobs = if jobs == 0 {
        std::thread::available_parallelism().map_or(1, std::num::NonZeroUsize::get)
    } else {
        jobs
    };
    let traced = flags.contains_key("timeline");

    // Fan the cells (antagonist counts 0..tenants) across workers;
    // aggregate strictly in grid order.
    let n = usize::from(tenants);
    let next = std::sync::atomic::AtomicUsize::new(0);
    let slots: Vec<std::sync::Mutex<Option<Result<CotenancyCell, String>>>> =
        (0..n).map(|_| std::sync::Mutex::new(None)).collect();
    std::thread::scope(|s| {
        for _ in 0..jobs.min(n) {
            s.spawn(|| loop {
                let i = next.fetch_add(1, std::sync::atomic::Ordering::Relaxed);
                if i >= n {
                    break;
                }
                let out = run_cotenancy_cell(i as u8, wave, epc_pages, ops, traced);
                *slots[i].lock().expect("cell slot lock") = Some(out);
            });
        }
    });
    let mut cells = Vec::with_capacity(n);
    for slot in slots {
        cells.push(
            slot.into_inner()
                .expect("cell slot lock")
                .ok_or("cell never ran (internal error)")??,
        );
    }

    // Noisy-neighbor curve: victim slowdown is relative to the
    // antagonist-free cell, which is always grid index 0.
    let quiet = cells[0].reports[0].cycles.max(1);
    let mut table = ReportTable::new(
        &format!(
            "Co-tenancy noisy-neighbor sweep (epc {epc_pages} pages, wave {wave} cycles, \
             {ops} ops/tenant)"
        ),
        &[
            "cell",
            "tenant",
            "cycles",
            "waves",
            "slowdown",
            "resident",
            "allocs",
            "loadbacks",
            "victimizations",
            "charged_faults",
            "charged_evictions",
            "fault_rate",
        ],
    );
    for cell in &cells {
        for r in &cell.reports {
            let slowdown = if r.tenant == TenantId(0) {
                format!("{:.4}", r.cycles as f64 / quiet as f64)
            } else {
                "-".to_owned()
            };
            table.push_row(vec![
                cell.key.to_string(),
                r.name.clone(),
                r.cycles.to_string(),
                r.waves.to_string(),
                slowdown,
                r.epc.resident_frames.to_string(),
                r.epc.allocs.to_string(),
                r.epc.loadbacks.to_string(),
                r.epc.victimizations.to_string(),
                r.charged.epc_faults.to_string(),
                r.charged.epc_evictions.to_string(),
                format!("{:.4}", r.charged.epc_faults as f64 / ops as f64),
            ]);
        }
    }
    println!("{table}");

    let io = artifact_backend(flags)?;
    if let Some(out) = flags.get("out") {
        let path = PathBuf::from(out);
        table
            .emit_sealed_with(io.as_ref(), &path)
            .map_err(|e| e.to_string())?;
        println!("[report] {}", path.display());
    }
    if let Some(out) = flags.get("timeline") {
        let path = PathBuf::from(out);
        // Concatenated per-cell streams, each preceded by a meta line
        // naming the cell the records belong to.
        let mut body = String::new();
        for cell in &cells {
            body.push_str(&format!("{{\"cell\":\"{}\"}}\n", cell.key));
            body.push_str(&cell.jsonl);
        }
        artifact_io::write_atomic_with(io.as_ref(), &path, &body).map_err(|e| e.to_string())?;
        println!("[timeline] {}", path.display());
    }
    Ok(())
}

/// One completed cell of the MPC sweep: the (possibly partial) protocol
/// report plus how the cell ended.
struct MpcCell {
    key: CellKey,
    outcome: &'static str,
    report: MpcReport,
}

/// Runs one MPC cell: `p` relay-connected party enclaves signing with
/// quorum `t` under the salted fault plan. Pure function of its
/// arguments, so the sweep fans cells across threads and aggregates in
/// grid order — `--jobs` provably cannot change a byte of output. A
/// quorum loss is a *data point* on the degradation curve, not a
/// command failure.
fn run_mpc_cell(p: u32, t: u32, rounds: u32, net: &NetFaultPlan) -> Result<MpcCell, String> {
    let key = CellKey {
        workload: 0,
        mode: ExecMode::Native,
        setting: InputSetting::High,
        rep: 0,
        tenant: None,
        party: Some(PartyDim {
            parties: u8::try_from(p).unwrap_or(u8::MAX),
            threshold: u8::try_from(t).unwrap_or(u8::MAX),
        }),
    };
    let cfg = MpcConfig::new(p, t).net(net.clone()).rounds(rounds);
    match run_mpc(&cfg, u64::from(p)) {
        Ok(report) => Ok(MpcCell {
            key,
            outcome: "ok",
            report,
        }),
        Err(MpcError::QuorumLost { partial, .. }) => Ok(MpcCell {
            key,
            outcome: "quorum_lost",
            report: *partial,
        }),
        Err(e) => Err(format!("cell {key}: {e}")),
    }
}

fn cmd_mpc(flags: &HashMap<String, String>) -> Result<(), String> {
    let parties: u32 = flags
        .get("parties")
        .map_or(Ok(5), |s| s.parse())
        .map_err(|_| "bad --parties (2..=64)")?;
    if !(2..=64).contains(&parties) {
        return Err("--parties must be 2..=64".to_owned());
    }
    let threshold: u32 = flags
        .get("threshold")
        .map_or(Ok(3), |s| s.parse())
        .map_err(|_| "bad --threshold")?;
    if threshold == 0 || threshold > parties {
        return Err("--threshold must be 1..=parties".to_owned());
    }
    let rounds: u32 = flags
        .get("rounds")
        .map_or(Ok(8), |s| s.parse())
        .map_err(|_| "bad --rounds")?;
    if rounds == 0 {
        return Err("--rounds must be at least 1".to_owned());
    }
    let net = match flags.get("net") {
        Some(spec) => NetFaultPlan::parse(spec)?,
        None => NetFaultPlan::default(),
    };
    let jobs: usize = flags
        .get("jobs")
        .map_or(Ok(0), |s| s.parse())
        .map_err(|_| "bad --jobs")?;
    let jobs = if jobs == 0 {
        std::thread::available_parallelism().map_or(1, std::num::NonZeroUsize::get)
    } else {
        jobs
    };

    // Quorum-survival curve: party counts t..=n, same plan, same quorum.
    let counts: Vec<u32> = (threshold.max(2)..=parties).collect();
    let n = counts.len();
    let next = std::sync::atomic::AtomicUsize::new(0);
    let slots: Vec<std::sync::Mutex<Option<Result<MpcCell, String>>>> =
        (0..n).map(|_| std::sync::Mutex::new(None)).collect();
    std::thread::scope(|s| {
        for _ in 0..jobs.min(n) {
            s.spawn(|| loop {
                let i = next.fetch_add(1, std::sync::atomic::Ordering::Relaxed);
                if i >= n {
                    break;
                }
                let out = run_mpc_cell(counts[i], threshold, rounds, &net);
                *slots[i].lock().expect("cell slot lock") = Some(out);
            });
        }
    });
    let mut cells = Vec::with_capacity(n);
    for slot in slots {
        cells.push(
            slot.into_inner()
                .expect("cell slot lock")
                .ok_or("cell never ran (internal error)")??,
        );
    }

    let mut table = ReportTable::new(
        &format!("MPC threshold-signing sweep ({threshold}-of-p, {rounds} rounds)"),
        &[
            "cell",
            "parties",
            "threshold",
            "outcome",
            "completed",
            "rounds",
            "survival_permille",
            "mean_latency",
            "max_latency",
            "suspects",
            "recovers",
            "sent",
            "delivered",
            "dropped",
            "duplicated",
            "total_cycles",
            "checksum",
        ],
    );
    for cell in &cells {
        let r = &cell.report;
        table.push_row(vec![
            cell.key.to_string(),
            r.parties.to_string(),
            r.threshold.to_string(),
            cell.outcome.to_owned(),
            r.completed_rounds().to_string(),
            r.rounds.len().to_string(),
            r.survival_permille().to_string(),
            r.mean_round_latency().to_string(),
            r.max_round_latency().to_string(),
            r.suspect_events().to_string(),
            r.recover_events().to_string(),
            r.stats.sent.to_string(),
            r.stats.delivered.to_string(),
            r.stats.dropped.to_string(),
            r.stats.duplicated.to_string(),
            r.total_cycles.to_string(),
            r.checksum.to_string(),
        ]);
    }
    println!("{table}");

    let io = artifact_backend(flags)?;
    if let Some(out) = flags.get("out") {
        let path = PathBuf::from(out);
        table
            .emit_sealed_with(io.as_ref(), &path)
            .map_err(|e| e.to_string())?;
        println!("[report] {}", path.display());
    }
    if let Some(out) = flags.get("timeline") {
        let path = PathBuf::from(out);
        // Concatenated per-cell supervision streams, each preceded by a
        // meta line naming the cell the events belong to.
        let mut body = String::new();
        for cell in &cells {
            body.push_str(&format!("{{\"cell\":\"{}\"}}\n", cell.key));
            body.push_str(&cell.report.supervision.render_jsonl());
        }
        artifact_io::write_atomic_with(io.as_ref(), &path, &body).map_err(|e| e.to_string())?;
        println!("[timeline] {}", path.display());
    }
    Ok(())
}

fn cmd_campaign(config_path: &str, flags: &HashMap<String, String>) -> Result<(), String> {
    let text = RealFs
        .read(std::path::Path::new(config_path))
        .map_err(|e| e.to_string())?;
    let cfg = CampaignConfig::parse(&text)?;
    let out = flags
        .get("out")
        .map(PathBuf::from)
        .unwrap_or_else(|| PathBuf::from(format!("campaign-{}", cfg.name)));
    if let Some(soak) = flags.get("soak") {
        let kills: usize = soak.parse().map_err(|_| "bad --soak")?;
        let outcome = run_soak(&cfg, &out, kills).map_err(|e| e.to_string())?;
        println!(
            "soak     : {} kill/resume cycles fired (requested {kills})",
            outcome.kills_fired
        );
        println!(
            "cycles   : golden {} | storm {}",
            humanize(outcome.golden_cycles),
            humanize(outcome.storm_cycles)
        );
        if outcome.converged {
            println!("converged: every compared artifact is byte-identical to golden");
        } else {
            for m in &outcome.mismatches {
                eprintln!("mismatch : {m}");
            }
            return Err(format!(
                "soak did not converge: {} artifacts diverged",
                outcome.mismatches.len()
            ));
        }
        if outcome.kills_fired < kills {
            return Err(format!(
                "only {} of {kills} scheduled kills fired — enlarge the campaign",
                outcome.kills_fired
            ));
        }
        return Ok(());
    }
    let report = run_campaign(&cfg, &out, true, None).map_err(|e| e.to_string())?;
    let mut table = ReportTable::new(
        &format!("campaign {}", cfg.name),
        &[
            "stage",
            "executed",
            "adopted",
            "shed",
            "quarantined",
            "runtime_cycles",
            "backoff_cycles",
        ],
    );
    for s in &report.stages {
        table.push_row(vec![
            if s.skipped {
                format!("{} (skipped)", s.name)
            } else {
                s.name.clone()
            },
            s.executed.to_string(),
            s.adopted.to_string(),
            s.shed.to_string(),
            s.quarantined.to_string(),
            humanize(s.runtime_cycles),
            humanize(s.backoff_cycles),
        ]);
    }
    println!("{table}");
    let h = report.health;
    println!(
        "health   : retry spend {} cycles | degraded {} | breaker trips {} | cells shed {}",
        humanize(h.retry_spent_cycles),
        h.degraded,
        h.breaker_trips,
        h.cells_shed
    );
    println!("artifacts: {}", out.display());
    Ok(())
}

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let Some(cmd) = args.first() else {
        return usage();
    };
    // `trace` and `campaign` take a positional argument before the flags.
    let (positional, flag_args) = if cmd == "trace" || cmd == "campaign" {
        match args.get(1).filter(|a| !a.starts_with("--")) {
            Some(name) => (Some(name.clone()), &args[2..]),
            None => {
                eprintln!(
                    "error: {cmd} needs a {}",
                    if cmd == "trace" {
                        "workload name"
                    } else {
                        "config file path"
                    }
                );
                return usage();
            }
        }
    } else {
        (None, &args[1..])
    };
    let flags = match parse_flags(flag_args) {
        Ok(f) => f,
        Err(e) => {
            eprintln!("error: {e}");
            return usage();
        }
    };
    let result = match cmd.as_str() {
        "list" => cmd_list(),
        "run" => cmd_run(&flags),
        "compare" => cmd_compare(&flags),
        "suite" => cmd_suite(&flags),
        "trace" => cmd_trace(positional.as_deref().unwrap_or_default(), &flags),
        "campaign" => cmd_campaign(positional.as_deref().unwrap_or_default(), &flags),
        "cotenancy" => cmd_cotenancy(&flags),
        "mpc" => cmd_mpc(&flags),
        _ => {
            return usage();
        }
    };
    match result {
        Ok(()) => ExitCode::SUCCESS,
        Err(e) => {
            eprintln!("error: {e}");
            ExitCode::FAILURE
        }
    }
}
